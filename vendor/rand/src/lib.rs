//! Offline stand-in for the `rand` crate (API subset of rand 0.9).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: `StdRng` (here a
//! xoshiro256++ generator seeded through SplitMix64), the `Rng` /
//! `SeedableRng` traits with `random` / `random_range`, and the slice
//! helpers `shuffle` / `choose`. The streams differ from upstream
//! `StdRng` (which is ChaCha12), but every consumer in this workspace
//! treats seeded output as "arbitrary but deterministic", never as a
//! fixed golden sequence, so swapping back to the real crate is a
//! Cargo.toml-only change.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ state (Blackman & Vigna), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256PlusPlus {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// The workspace's standard generator (xoshiro256++ here; ChaCha12
    /// upstream — both uniform, both seedable, different streams).
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::from_u64(seed))
        }
    }
}

/// A type samplable from the "standard" distribution (`Rng::random`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A type uniformly samplable from a range (mirrors upstream's trait of
/// the same name; a single blanket `SampleRange` impl per range shape
/// keeps float-literal inference working, e.g. `random_range(0.0..1.0)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(lo, hi, rng)
    }
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's
/// widening-multiply method, no rejection loop needed at 64 bits for
/// our data-generation purposes).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_closed<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        lo + f32::sample_standard(rng) * (hi - lo)
    }
    fn sample_closed<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        lo + u * (hi - lo)
    }
}

/// High-level sampling interface, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range`. Panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A bool that is true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::*;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from index-addressable collections.
    pub trait IndexedRandom {
        /// The element type.
        type Output;
        /// A uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.random_range(3..=8);
            assert!((3..=8).contains(&u));
            let f: f64 = rng.random_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
            let s: f64 = rng.random();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "permutation");
        assert_ne!(xs, sorted, "almost surely not identity");
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn mean_of_unit_uniform_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
