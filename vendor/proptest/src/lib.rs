//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build environment has no crates.io access, so this crate vendors
//! the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`#[test] fn name(arg in strategy, ...)`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * range strategies (`-10i64..10`, `0.0f64..1.0`, inclusive forms),
//! * tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! * string-regex strategies for the subset of patterns the tests use
//!   (literals, `[a-z]`-style classes, `\PC`, and `{m,n}` repetition).
//!
//! Differences from upstream: failing inputs are *not* shrunk (the
//! failure message reports the case's deterministic seed instead), and
//! generation uses a fixed per-test seed derived from the test name so
//! runs are reproducible. `PROPTEST_CASES` overrides the case count.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- rng

/// Deterministic generator used to sample strategies (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------- strategies

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String strategies from a small regex-like pattern language.
///
/// Supported syntax: literal characters, `[a-z0-9_]`-style classes with
/// ranges, the escape `\PC` (any printable non-control character), and
/// a `{m,n}` repetition suffix on the preceding atom.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Printable,
}

#[derive(Clone, Debug)]
struct PatternPart {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternPart> {
    let mut parts: Vec<PatternPart> = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // proptest uses `\PC` = "not in unicode category C
                    // (control)"; we approximate with printable chars
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "only \\PC escapes are supported");
                    Atom::Printable
                }
                Some(esc) => Atom::Literal(esc),
                None => panic!("dangling escape in pattern {pat:?}"),
            },
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars
                                    .next()
                                    .unwrap_or_else(|| panic!("open range in {pat:?}"));
                                ranges.push((lo, hi));
                            } else {
                                ranges.push((lo, lo));
                            }
                        }
                        None => panic!("unterminated class in pattern {pat:?}"),
                    }
                }
                Atom::Class(ranges)
            }
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition min"),
                    n.trim().parse().expect("repetition max"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push(PatternPart { atom, min, max });
    }
    parts
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            ranges[0].0
        }
        Atom::Printable => {
            // mostly ASCII printables, occasionally multi-byte chars to
            // stress UTF-8 handling like upstream's \PC does
            if rng.below(8) == 0 {
                const EXOTIC: &[char] = &['é', 'Ω', 'ß', '中', '🦀', '∑', '→', '\u{00A0}'];
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
            }
        }
    }
}

fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for part in parse_pattern(pat) {
        let n = part.min as u64 + rng.below((part.max - part.min + 1) as u64);
        for _ in 0..n {
            out.push(sample_atom(&part.atom, rng));
        }
    }
    out
}

// -------------------------------------------------- prop::* namespaces

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Length specification for collection strategies (upstream's
    /// `SizeRange`): an exact `usize`, a `Range`, or a `RangeInclusive`.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..*r.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// One of the given options, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// ------------------------------------------------------------- runner

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The inputs did not satisfy a `prop_assume!` precondition.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "inputs rejected by prop_assume!"),
        }
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of cases to run per property (default 64, `PROPTEST_CASES`
/// overrides).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// FNV-1a hash of the test name, mixed with `PROPTEST_SEED` when set —
/// gives every property its own reproducible stream.
pub fn base_seed(test_name: &str) -> u64 {
    let user: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0x9E37_79B9);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ user;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: samples cases, tolerates rejects, panics with
/// the case seed on failure. Used by the [`proptest!`] macro.
pub fn run_property(test_name: &str, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let cases = case_count();
    let max_rejects = cases * 16;
    let mut rejects = 0usize;
    let mut run = 0usize;
    let mut i = 0u64;
    while run < cases {
        let seed = base_seed(test_name).wrapping_add(i.wrapping_mul(0x2545_F491_4F6C_DD1D));
        i += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => run += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "property {test_name}: too many prop_assume! rejections \
                         ({rejects} rejects for {run} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {test_name} failed at case {run} (case seed {seed}): {msg}\n\
                     (re-run with PROPTEST_SEED to reproduce; no shrinking in offline shim)"
                );
            }
        }
    }
}

// ------------------------------------------------------------- macros

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                    let __case = move || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} at {}:{} (left: {:?}, right: {:?})",
                stringify!($lhs), stringify!($rhs), file!(), line!(), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} at {}:{} (left: {:?}, right: {:?}): {}",
                stringify!($lhs), stringify!($rhs), file!(), line!(), l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} at {}:{} (both: {:?})",
                stringify!($lhs),
                stringify!($rhs),
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// Skips the case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*` (which also republishes the crate as `prop`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn int_ranges_in_bounds(x in -50i64..50, y in 1usize..10) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..10).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(pairs in prop::collection::vec((-10i64..10, 0.0f64..1.0), 0..20)) {
            prop_assert!(pairs.len() < 20);
            for &(a, b) in &pairs {
                prop_assert!((-10..10).contains(&a));
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn select_picks_an_option(v in prop::sample::select(vec![2usize, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn string_patterns_match_shape(s in "Lbl[a-z]{0,5}", any in "\\PC{0,40}") {
            prop_assert!(s.starts_with("Lbl"));
            prop_assert!(s.len() <= 8);
            prop_assert!(s[3..].chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(any.chars().count() <= 40);
            prop_assert!(!any.chars().any(|c| c.is_control()));
        }
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_property("always_fails", |_rng| {
                Err(crate::TestCaseError::fail("nope"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case seed"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(crate::base_seed("t"));
        let mut b = crate::TestRng::new(crate::base_seed("t"));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
