//! Offline stand-in for `rayon` (API subset).
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of rayon's surface the workspace uses — `par_iter()` /
//! `into_par_iter()` / `map` / `collect` / `for_each`, plus [`join`] and
//! the global thread-count knobs — implemented over `std::thread::scope`
//! with contiguous index chunking instead of work stealing.
//!
//! Two deliberate properties make this a good fit for HyGraph's
//! determinism contract (see DESIGN.md "Threading model"):
//!
//! 1. **Order-preserving collect.** `collect()` materialises results in
//!    index order, so `xs.par_iter().map(f).collect::<Vec<_>>()` is
//!    *bit-identical* to the sequential `xs.iter().map(f).collect()`
//!    whenever `f` is pure — regardless of thread count.
//! 2. **No hidden reductions.** There is intentionally no parallel
//!    `sum`/`reduce`: floating-point reductions would depend on the
//!    chunking and therefore on the thread count. Callers collect and
//!    fold sequentially (O(n) fold after an O(n·k) parallel map is
//!    noise), keeping results independent of parallelism.
//!
//! Work is split into `current_num_threads()` contiguous blocks; each
//! worker fills its own block and the main thread works block 0, so the
//! scheduling overhead is one thread spawn per core per call. That is
//! coarser than rayon's work stealing but appropriate for the uniform
//! per-element workloads HyGraph parallelises (per-vertex BFS,
//! per-binding evaluation, per-pair correlation).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// The number of worker threads parallel operations will use.
///
/// Resolution order: `ThreadPoolBuilder::build_global` override →
/// `RAYON_NUM_THREADS` → `HYGRAPH_THREADS` → `available_parallelism()`.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = env_threads("RAYON_NUM_THREADS").or_else(|| env_threads("HYGRAPH_THREADS")) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error type of [`ThreadPoolBuilder::build_global`] (never produced
/// here: re-configuration is allowed, unlike upstream rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Global thread-count configuration, mirroring rayon's builder.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Installs the configuration globally. Unlike upstream rayon this
    /// may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_OVERRIDE.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }
}

/// Runs two closures, potentially on two threads, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        };
        (ra, rb)
    })
}

/// The parallel-iterator abstraction: a length plus a pure indexed
/// producer. Adapters compose the producer; consumers drive it across
/// threads in contiguous chunks, preserving index order.
pub trait ParallelIterator: Sized + Sync {
    /// Element type.
    type Item: Send;

    /// Number of elements.
    fn par_len(&self) -> usize;

    /// Produces element `i` (must be pure: called once per index, from
    /// an arbitrary worker thread).
    fn par_get(&self, i: usize) -> Self::Item;

    /// Maps every element through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Collects into `C` preserving index order (deterministic).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Applies `f` to every element for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_discard(&self, &f);
    }
}

/// Order-preserving collection from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection by driving `iter`.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        drive(&iter)
    }
}

/// Chunked, order-preserving evaluation of all elements.
fn drive<P: ParallelIterator>(p: &P) -> Vec<P::Item> {
    let len = p.par_len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len < 2 {
        return (0..len).map(|i| p.par_get(i)).collect();
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1);
        for t in 1..threads {
            let lo = t * chunk;
            if lo >= len {
                break;
            }
            let hi = ((t + 1) * chunk).min(len);
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    (lo..hi).map(|i| p.par_get(i)).collect::<Vec<_>>()
                }))
            }));
        }
        let first = catch_unwind(AssertUnwindSafe(|| {
            (0..chunk.min(len))
                .map(|i| p.par_get(i))
                .collect::<Vec<_>>()
        }));
        // join every worker before unwinding so the scope exits cleanly
        let rest: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread itself never panics"))
            .collect();
        let mut out = match first {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        };
        for r in rest {
            match r {
                Ok(v) => out.extend(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    })
}

/// Chunked evaluation for pure side effects.
fn drive_discard<P: ParallelIterator, F: Fn(P::Item) + Sync>(p: &P, f: &F) {
    let len = p.par_len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len < 2 {
        for i in 0..len {
            f(p.par_get(i));
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1);
        for t in 1..threads {
            let lo = t * chunk;
            if lo >= len {
                break;
            }
            let hi = ((t + 1) * chunk).min(len);
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    for i in lo..hi {
                        f(p.par_get(i));
                    }
                }))
            }));
        }
        let first = catch_unwind(AssertUnwindSafe(|| {
            for i in 0..chunk.min(len) {
                f(p.par_get(i));
            }
        }));
        let rest: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread itself never panics"))
            .collect();
        if let Err(payload) = first {
            resume_unwind(payload);
        }
        for r in rest {
            if let Err(payload) = r {
                resume_unwind(payload);
            }
        }
    });
}

/// Map adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_get(&self, i: usize) -> R {
        (self.f)(self.base.par_get(i))
    }
}

/// Parallel iterator over a shared slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over an index range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn par_len(&self) -> usize {
                self.len
            }

            fn par_get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;

            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter {
                    start: self.start,
                    len: (self.end.max(self.start) - self.start) as usize,
                }
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;

            fn into_par_iter(self) -> RangeIter<$t> {
                let (start, end) = (*self.start(), *self.end());
                RangeIter {
                    start,
                    len: if start > end { 0 } else { (end - start) as usize + 1 },
                }
            }
        }
    )*};
}

impl_range_iter!(usize, u64, u32, i64, i32);

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Borrowing parallel iteration (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a shared reference).
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Serialises tests that mutate the global thread override.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = THREAD_OVERRIDE.swap(n, Ordering::Relaxed);
        let out = f();
        THREAD_OVERRIDE.store(prev, Ordering::Relaxed);
        out
    }

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_001).collect();
        let seq: Vec<u64> = xs.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par: Vec<u64> =
                with_threads(threads, || xs.par_iter().map(|x| x * 3 + 1).collect());
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn range_into_par_iter() {
        let par: Vec<usize> = with_threads(4, || (5usize..105).into_par_iter().collect());
        assert_eq!(par, (5..105).collect::<Vec<_>>());
        let incl: Vec<u64> = with_threads(4, || (5u64..=104).into_par_iter().collect());
        assert_eq!(incl, (5..=104).collect::<Vec<_>>());
        let empty: Vec<usize> = with_threads(4, || (9usize..9).into_par_iter().collect());
        assert!(empty.is_empty());
    }

    #[test]
    fn float_map_is_bit_identical() {
        let xs: Vec<f64> = (0..4096).map(|i| i as f64 * 0.1).collect();
        let seq: Vec<f64> = xs.iter().map(|x| (x.sin() * 1e6).sqrt()).collect();
        let par: Vec<f64> = with_threads(7, || {
            xs.par_iter().map(|x| (x.sin() * 1e6).sqrt()).collect()
        });
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn for_each_visits_everything() {
        let sum = AtomicU64::new(0);
        with_threads(5, || {
            (1u64..=1000).into_par_iter().for_each(|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            })
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = with_threads(2, || join(|| 6 * 7, || "ok"));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let _: Vec<u32> = (0u32..100)
                    .into_par_iter()
                    .map(|i| if i == 77 { panic!("boom") } else { i })
                    .collect();
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn builder_overrides_thread_count() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = THREAD_OVERRIDE.load(Ordering::Relaxed);
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 3);
        THREAD_OVERRIDE.store(prev, Ordering::Relaxed);
    }
}
