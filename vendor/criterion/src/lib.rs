//! Offline stand-in for `criterion` (API subset).
//!
//! The build environment has no crates.io access, so this crate provides
//! the benchmark surface the workspace uses: `Criterion::default()` with
//! `sample_size` / `warm_up_time` / `measurement_time`, benchmark
//! groups, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is plain wall-clock sampling (mean,
//! median, min) without criterion's outlier analysis or HTML reports.
//!
//! Extra over upstream: every measured result is recorded and can be
//! exported as machine-readable JSON — either explicitly with
//! [`Criterion::export_json`] (used by custom `fn main` benches) or
//! automatically by `criterion_main!` when `CRITERION_JSON=<path>` is
//! set in the environment.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Group name (empty for ungrouped benches).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations.
    pub iterations: u64,
}

impl BenchResult {
    /// The qualified `group/name` id.
    pub fn id(&self) -> String {
        if self.group.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.group, self.name)
        }
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

/// The benchmark harness handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    config: Config,
    results: Rc<RefCell<Vec<BenchResult>>>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            config: Config::default(),
            results: Rc::new(RefCell::new(Vec::new())),
        }
    }
}

impl Criterion {
    /// Target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.config.clone();
        self.run_one(String::new(), name.into(), &config, f);
        self
    }

    fn run_one<F>(&mut self, group: String, name: String, config: &Config, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: config.clone(),
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2.0
        };
        let result = BenchResult {
            group,
            name,
            mean_ns: mean,
            median_ns: median,
            min_ns: samples[0],
            iterations: n as u64,
        };
        println!(
            "{:<50} time: [{} {} {}]  ({} iters)",
            result.id(),
            fmt_ns(result.min_ns),
            fmt_ns(result.mean_ns),
            fmt_ns(result.median_ns),
            result.iterations,
        );
        self.results.borrow_mut().push(result);
    }

    /// All results measured so far.
    pub fn results(&self) -> Vec<BenchResult> {
        self.results.borrow().clone()
    }

    /// Writes every measured result as a JSON array to `path`.
    pub fn export_json(&self, path: &str) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut out = String::from("[\n");
        let results = self.results.borrow();
        for (i, r) in results.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"iterations\": {}}}{}",
                escape(&r.group),
                escape(&r.name),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.iterations,
                if i + 1 < results.len() { "," } else { "" },
            );
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: Option<Config>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config
            .get_or_insert_with(|| self.criterion.config.clone())
            .sample_size = n.max(1);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config
            .get_or_insert_with(|| self.criterion.config.clone())
            .measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self
            .config
            .clone()
            .unwrap_or_else(|| self.criterion.config.clone());
        self.criterion
            .run_one(self.name.clone(), name.into(), &config, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    config: Config,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: warm-up for the configured duration, then
    /// repeated timed iterations until the measurement window closes or
    /// `sample_size * 64` iterations are collected.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.config.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let max_iters = (self.config.sample_size as u64).saturating_mul(64);
        let deadline = Instant::now() + self.config.measurement;
        let mut samples = Vec::new();
        while Instant::now() < deadline && (samples.len() as u64) < max_iters {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        if samples.is_empty() {
            // routine slower than the window: time one iteration anyway
            let t0 = Instant::now();
            std::hint::black_box(routine());
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        self.samples_ns = samples;
    }
}

/// Prevents the optimiser from eliding a value (re-export convenience;
/// upstream criterion also offers this alongside `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            *criterion = $config.with_results_of(criterion);
            $($target(criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

impl Criterion {
    /// Adopts the accumulated results of `other` (macro plumbing: lets a
    /// group's `config = ...` expression replace the harness while
    /// keeping earlier groups' measurements).
    pub fn with_results_of(mut self, other: &Criterion) -> Criterion {
        self.results = Rc::clone(&other.results);
        self
    }
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
/// When `CRITERION_JSON` is set, results are exported there on exit.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            if let Ok(path) = std::env::var("CRITERION_JSON") {
                criterion
                    .export_json(&path)
                    .expect("write CRITERION_JSON output");
                println!("wrote {path}");
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn measures_and_records() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        let rs = c.results();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].id(), "grp/noop");
        assert!(rs[0].iterations >= 1);
        assert!(rs[0].mean_ns >= 0.0);
        assert!(rs[0].min_ns <= rs[0].mean_ns * 1.0001);
    }

    #[test]
    fn group_sample_size_caps_iterations() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("capped", |b| b.iter(|| std::hint::black_box(3 * 3)));
        g.finish();
        let rs = c.results();
        assert!(rs[0].iterations <= 2 * 64);
    }

    #[test]
    fn json_export_roundtrips_shape() {
        let mut c = quick();
        c.bench_function("solo", |b| b.iter(|| 2 + 2));
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        let path = path.to_str().unwrap();
        c.export_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.contains("\"name\": \"solo\""));
        assert!(text.contains("mean_ns"));
        let _ = std::fs::remove_file(path);
    }
}
