//! The time-travel correctness property: for any random mutation
//! stream, `AS OF t_i` must answer **byte-identically** to a fresh
//! replay of the store up to commit `i` — the same determinism contract
//! that makes WAL recovery exact — and `AS OF NOW()` must be
//! byte-identical to the plain, bound-free query. Both execution modes
//! of the oracle are exercised, and `BETWEEN` windows must union
//! exactly the epochs the window saw.

use hygraph::persist::{Durable, HgMutation};
use hygraph::prelude::*;
use hygraph::query_engine as hq;
use hygraph::temporal::{HistoryConfig, HistoryStore, SnapshotResolution};
use hygraph::types::bytes::ByteWriter;
use hygraph::types::parallel::ExecMode;
use hygraph::types::props;
use proptest::prelude::*;

/// The fixture: a user/card pair over an integer-valued spend series
/// (exact float aggregates), a merchant, and an unrelated station.
fn instance() -> HyGraph {
    let spend = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 20, |i| i as f64);
    HyGraphBuilder::new()
        .univariate("spend", &spend)
        .pg_vertex("u1", ["User"], props! {"name" => "ada", "age" => 34i64})
        .ts_vertex("c1", ["Card"], "spend")
        .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
        .pg_vertex("s1", ["Station"], props! {"name" => "dock-1"})
        .pg_edge(None, "u1", "c1", ["USES"], props! {})
        .pg_edge(None, "c1", "m1", ["TX"], props! {"amount" => 120.0})
        .build()
        .unwrap()
        .hygraph
}

/// Query shapes spanning pure-graph matches, filters, series
/// aggregates, DISTINCT, and ORDER BY — both planner paths.
const QUERIES: &[&str] = &[
    "MATCH (u:User) RETURN u.name AS name",
    "MATCH (u:User) WHERE u.age > 30 RETURN u.name AS name",
    "MATCH (u:User)-[:USES]->(c:Card) RETURN u.name AS who, MEAN(DELTA(c) IN [0, 500)) AS m",
    "MATCH (u:User) RETURN COUNT(u) AS n",
    "MATCH (u:User) WHERE u.age > 20 RETURN DISTINCT u.name AS name ORDER BY name",
];

/// Decodes one op selector into a mutation against the current graph
/// state. `nv` is the live vertex-id space; `clock` hands out strictly
/// increasing append timestamps past the seeded series. Selector 6 is
/// a mutation that always fails to apply — history must record exactly
/// the applied prefix, nothing more.
fn decode_op(op: u8, s1: u64, s2: u64, nv: usize, clock: &mut i64) -> HgMutation {
    match op % 7 {
        0 => HgMutation::AddPgVertex {
            labels: vec![Label::new("User")],
            props: props! {"name" => format!("u{s1}"), "age" => (s1 % 60) as i64},
            validity: Interval::ALL,
        },
        1 => HgMutation::AddPgVertex {
            labels: vec![Label::new("Station")],
            props: props! {"name" => format!("dock-{s1}")},
            validity: Interval::ALL,
        },
        2 => HgMutation::AddPgEdge {
            src: VertexId::from((s1 as usize) % nv),
            dst: VertexId::from((s2 as usize) % nv),
            labels: vec![Label::new(if s2.is_multiple_of(2) { "USES" } else { "TX" })],
            props: props! {},
            validity: Interval::ALL,
        },
        3 => {
            *clock += 10;
            HgMutation::Append {
                series: SeriesId::new(0),
                t: Timestamp::from_millis(*clock),
                row: vec![(s1 % 100) as f64],
            }
        }
        4 => HgMutation::SetProperty {
            el: ElementRef::Vertex(VertexId::from((s1 as usize) % nv)),
            key: "age".to_owned(),
            value: PropertyValue::Static(Value::Int((s2 % 80) as i64)),
        },
        5 => HgMutation::CloseVertex {
            v: VertexId::from((s1 as usize) % nv),
            t: Timestamp::from_millis(10_000 + (s2 % 100) as i64),
        },
        _ => HgMutation::Append {
            series: SeriesId::new(999),
            t: Timestamp::from_millis(1),
            row: vec![0.0],
        },
    }
}

fn encoded(r: &hq::QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    r.encode(&mut w);
    w.into_bytes()
}

fn state_bytes(hg: &HyGraph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    hg.encode_state(&mut w);
    w.into_bytes()
}

proptest! {
    #[test]
    fn as_of_equals_a_fresh_replay_to_that_commit(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..u64::MAX, 0u64..u64::MAX), 1..10),
    ) {
        let mut live = instance();
        let mut history = HistoryStore::new(HistoryConfig::default(), &live, 0);

        // apply the stream one batch per op, the way the engine commits:
        // prefix up to the first failure, mirrored into history
        let mut clock = 1_000i64;
        let mut commits: Vec<(i64, Vec<HgMutation>)> = Vec::new();
        for (i, &(op, s1, s2)) in ops.iter().enumerate() {
            let nv = live.topology().vertex_capacity();
            let m = decode_op(op, s1, s2, nv, &mut clock);
            let ts = history.allocate_ts((i as i64 + 1) * 1_000);
            let applied = live.apply(&m).is_ok();
            let batch = if applied { vec![m] } else { Vec::new() };
            history.record_commit(ts, batch.clone());
            if !batch.is_empty() {
                commits.push((ts, batch));
            }
        }
        prop_assert_eq!(
            history.commit_timestamps(),
            commits.iter().map(|(ts, _)| *ts).collect::<Vec<_>>(),
            "history retains exactly the non-empty applied batches"
        );

        // oracle: an independent replay from the same fixture
        let mut replay = instance();
        let mut oracle: Vec<(i64, HyGraph)> = Vec::new();
        for (ts, batch) in &commits {
            for m in batch {
                replay.apply(m).expect("applied once, must apply again");
            }
            oracle.push((*ts, replay.clone()));
        }
        prop_assert_eq!(
            state_bytes(&replay), state_bytes(&live),
            "replay and live disagree — determinism broken"
        );

        // AS OF t_i (and mid-epoch t_i + 500) reconstructs commit i's
        // state bit for bit, and queries over it match a fresh
        // execution on the oracle graph in both execution modes
        for (i, (ts, oracle_state)) in oracle.iter().enumerate() {
            let is_last = i + 1 == oracle.len();
            for probe in [*ts, *ts + 500] {
                let snap = match history.snapshot_at(probe) {
                    Ok(SnapshotResolution::Past(past)) => {
                        prop_assert!(!is_last, "last commit must resolve Live");
                        past
                    }
                    Ok(SnapshotResolution::Live) => {
                        // at/after the newest commit the live store is
                        // the answer — and it equals the last oracle
                        prop_assert!(is_last, "only the last commit resolves Live");
                        std::sync::Arc::new(live.clone())
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("AS OF {probe}: {e}"))),
                };
                prop_assert_eq!(
                    state_bytes(&snap), state_bytes(oracle_state),
                    "AS OF {} is not the state after commit {}", probe, i
                );
                for text in QUERIES {
                    let q = hq::parser::parse(text).expect("pool queries parse");
                    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                        let got = hq::execute_mode(&snap, &q, mode)
                            .map_err(|e| TestCaseError::fail(format!("{text:?}: {e}")))?;
                        let want = hq::execute_mode(oracle_state, &q, mode)
                            .map_err(|e| TestCaseError::fail(format!("oracle {text:?}: {e}")))?;
                        prop_assert_eq!(
                            &encoded(&got), &encoded(&want),
                            "AS OF {} diverged for {:?} ({:?})", probe, text, mode
                        );
                    }
                }
            }
        }

        // AS OF NOW() == the plain bound-free query, byte for byte,
        // through the full instrumented entry point with the history
        // as resolver
        for text in QUERIES {
            let plain = hq::run_instrumented_bound(&live, text, None, Some(&mut history), None)
                .map_err(|e| TestCaseError::fail(format!("plain {text:?}: {e}")))?;
            let as_of_now_text = text.replacen(" RETURN", " AS OF NOW() RETURN", 1);
            let now = hq::run_instrumented_bound(
                &live, &as_of_now_text, None, Some(&mut history), None,
            )
            .map_err(|e| TestCaseError::fail(format!("AS OF NOW {text:?}: {e}")))?;
            prop_assert_eq!(
                &encoded(&now), &encoded(&plain),
                "AS OF NOW() != plain for {:?}", text
            );
            // the injected-bound form at a future instant is Live too
            let future = hq::run_instrumented_bound(
                &live, text, None, Some(&mut history),
                Some(hq::TemporalBound::AsOf(Timestamp::from_millis(i64::MAX))),
            )
            .map_err(|e| TestCaseError::fail(format!("AS OF MAX {text:?}: {e}")))?;
            prop_assert_eq!(&encoded(&future), &encoded(&plain));
        }

        // BETWEEN [0, last]: exactly the union of every epoch's rows
        // (first-seen order), matching execute_epochs over the oracle
        if let Some((last_ts, _)) = oracle.last() {
            let mut states: Vec<std::sync::Arc<HyGraph>> =
                vec![std::sync::Arc::new(instance())];
            states.extend(oracle.iter().map(|(_, g)| std::sync::Arc::new(g.clone())));
            for text in QUERIES {
                let q = hq::parser::parse(text).expect("pool queries parse");
                let planned = hq::plan_query(&q).expect("pool queries plan");
                let want = hq::execute_epochs(&states, &planned, ExecMode::Auto)
                    .map_err(|e| TestCaseError::fail(format!("epochs {text:?}: {e}")))?;
                let got = hq::run_instrumented_bound(
                    &live, text, None, Some(&mut history),
                    Some(hq::TemporalBound::Between(
                        Timestamp::from_millis(0),
                        Timestamp::from_millis(*last_ts),
                    )),
                )
                .map_err(|e| TestCaseError::fail(format!("BETWEEN {text:?}: {e}")))?;
                prop_assert_eq!(
                    &encoded(&got), &encoded(&want),
                    "BETWEEN union diverged for {:?}", text
                );
            }
        }
    }
}
