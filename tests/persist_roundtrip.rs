//! Property tests for the persistence codecs over random full-model
//! instances from `hygraph-datagen`.
//!
//! These live in the root package because they tie together `datagen`
//! (instance generation), `core::binio` / `core::io` (the two HyGraph
//! codecs), `ts::persist` (the TsStore codec), and `persist` (the
//! durable engine) — a dependency cycle if placed in any one crate.

use hygraph::core::{binio, io};
use hygraph::datagen::random::{random_hygraph, random_walk};
use hygraph::persist::{DurableStore, TsMutation};
use hygraph::ts::TsStore;
use hygraph::types::SeriesId;
use proptest::prelude::*;

proptest! {
    /// The binary checkpoint codec is exact: decode(encode(x)) re-encodes
    /// to the same bytes, and the decoded instance allocates the same
    /// future ids (the WAL-replay prerequisite).
    #[test]
    fn binio_roundtrip_is_bit_exact(
        n_vertices in 1usize..40,
        n_edges in 0usize..60,
        n_series in 0usize..6,
        n_subgraphs in 0usize..4,
        seed in 0u64..500,
    ) {
        let hg = random_hygraph(n_vertices, n_edges, n_series, n_subgraphs, seed);
        let bytes = binio::to_bytes(&hg);
        let mut back = binio::from_bytes(&bytes).expect("binary round-trip decodes");
        prop_assert_eq!(binio::to_bytes(&back), bytes, "re-encode differs");

        // id-allocation continuity: the decoded instance hands out the
        // same ids the original would
        let mut original = hg;
        let s = hygraph::ts::MultiSeries::new(["probe"]);
        prop_assert_eq!(original.add_series(s.clone()), back.add_series(s));
        let sub_a = original.create_subgraph(
            ["probe"],
            hygraph::types::PropertyMap::new(),
            hygraph::types::Interval::ALL,
        );
        let sub_b = back.create_subgraph(
            ["probe"],
            hygraph::types::PropertyMap::new(),
            hygraph::types::Interval::ALL,
        );
        prop_assert_eq!(sub_a, sub_b);
    }

    /// The human-readable text format round-trips random full-model
    /// instances: semantics preserved, re-serialisation canonical.
    #[test]
    fn text_roundtrip_over_random_hygraph(
        n_vertices in 1usize..30,
        n_edges in 0usize..40,
        n_series in 0usize..5,
        n_subgraphs in 0usize..3,
        seed in 0u64..500,
    ) {
        let hg = random_hygraph(n_vertices, n_edges, n_series, n_subgraphs, seed);
        let text = io::to_string(&hg).expect("serialises");
        let back = io::from_str(&text).expect("round-trip parses");
        prop_assert_eq!(back.vertex_count(), hg.vertex_count());
        prop_assert_eq!(back.edge_count(), hg.edge_count());
        prop_assert_eq!(back.series_count(), hg.series_count());
        prop_assert_eq!(back.subgraphs().count(), hg.subgraphs().count());
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(io::to_string(&back).expect("serialises"), text);
    }

    /// The TsStore checkpoint codec is exact for arbitrary chunked
    /// content (including the f64 accumulation order inside summaries).
    #[test]
    fn ts_store_codec_roundtrip_is_bit_exact(
        n_series in 1usize..5,
        len in 0usize..400,
        seed in 0u64..500,
    ) {
        let mut store = TsStore::new();
        for k in 0..n_series {
            let id = SeriesId::new(k as u64);
            store.create_series(id);
            let walk = random_walk(len, 2.0, 100.0, seed + k as u64);
            store.insert_series(id, &walk);
        }
        let bytes = hygraph::ts::persist::store_to_bytes(&store);
        let back = hygraph::ts::persist::store_from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(hygraph::ts::persist::store_to_bytes(&back), bytes);
    }

    /// End-to-end: committing a random insert workload through the
    /// durable engine and recovering from disk is bit-identical to the
    /// in-memory state at every configuration.
    #[test]
    fn durable_recovery_matches_memory(
        n in 1usize..60,
        seed in 0u64..200,
    ) {
        let dir = hygraph::persist::fault::scratch_dir("prop-durable");
        let sid = SeriesId::new(0);
        let golden = {
            let mut store: DurableStore<TsStore> = DurableStore::open(&dir).expect("open");
            store.commit(TsMutation::CreateSeries(sid)).expect("create");
            let walk = random_walk(n, 1.0, 10.0, seed);
            let batch: Vec<TsMutation> = walk
                .iter()
                .map(|(t, v)| TsMutation::Insert(sid, t, v))
                .collect();
            store.commit_batch(batch).expect("batch");
            store.state_bytes()
            // dropped uncleanly — commits are synced
        };
        let store: DurableStore<TsStore> = DurableStore::open(&dir).expect("recover");
        prop_assert_eq!(store.state_bytes(), golden);
        std::fs::remove_dir_all(&dir).ok();
    }
}
