//! The standing-query maintenance property: a subscription's snapshot,
//! advanced only by the delta stream the [`SubscriptionRegistry`]
//! pushes, must stay **byte-identical** to re-running its query from
//! scratch after every committed mutation batch — across random HyQL
//! shapes (incremental and rerun-mode), random mutation sequences
//! (including failing batches, which take the rebuild path), and both
//! execution modes of the from-scratch oracle.

use hygraph::persist::{Durable, HgMutation};
use hygraph::prelude::*;
use hygraph::query_engine as hq;
use hygraph::sub::{apply_delta, Delta, DeltaSink, SubConfig, SubscriptionRegistry};
use hygraph::types::bytes::ByteWriter;
use hygraph::types::parallel::ExecMode;
use hygraph::types::props;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// The fixture: a user/card pair over an integer-valued spend series
/// (exact float aggregates), a merchant, and an unrelated station.
fn instance() -> HyGraph {
    let spend = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 20, |i| i as f64);
    HyGraphBuilder::new()
        .univariate("spend", &spend)
        .pg_vertex("u1", ["User"], props! {"name" => "ada", "age" => 34i64})
        .ts_vertex("c1", ["Card"], "spend")
        .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
        .pg_vertex("s1", ["Station"], props! {"name" => "dock-1"})
        .pg_edge(None, "u1", "c1", ["USES"], props! {})
        .pg_edge(None, "c1", "m1", ["TX"], props! {"amount" => 120.0})
        .build()
        .unwrap()
        .hygraph
}

/// Standing-query shapes: the first half maintain incrementally, the
/// second half force rerun mode (aggregates / DISTINCT / ORDER BY).
const QUERIES: &[&str] = &[
    "MATCH (u:User) RETURN u.name AS name",
    "MATCH (u:User) WHERE u.age > 30 RETURN u.name AS name",
    "MATCH (s:Station) RETURN s.name AS name",
    "MATCH (u:User)-[:USES]->(c:Card) WHERE SUM(DELTA(c) IN [0, 1000)) > 10 RETURN u.name AS who",
    "MATCH (u:User)-[:USES]->(c:Card) RETURN u.name AS who, MEAN(DELTA(c) IN [0, 500)) AS m",
    "MATCH (u:User) RETURN COUNT(u) AS n",
    "MATCH (u:User) RETURN DISTINCT u.name AS name",
    "MATCH (u:User) WHERE u.age > 20 RETURN u.name AS name ORDER BY name",
];

/// A sink that records every delta in push order.
#[derive(Default)]
struct CollectingSink {
    deltas: Mutex<Vec<(u64, Delta)>>,
    closed: Mutex<Vec<(u64, String)>>,
}

impl DeltaSink for CollectingSink {
    fn push_delta(&self, sub_id: u64, delta: &Delta) -> bool {
        self.deltas.lock().unwrap().push((sub_id, delta.clone()));
        true
    }

    fn close(&self, sub_id: u64, reason: &str) {
        self.closed
            .lock()
            .unwrap()
            .push((sub_id, reason.to_string()));
    }
}

/// Decodes one op selector into a mutation against the current graph
/// state. `nv` is the live vertex-id space; `clock` hands out strictly
/// increasing append timestamps past the seeded series.
fn decode_op(op: u8, s1: u64, s2: u64, nv: usize, clock: &mut i64) -> HgMutation {
    match op % 7 {
        0 => HgMutation::AddPgVertex {
            labels: vec![Label::new("User")],
            props: props! {"name" => format!("u{s1}"), "age" => (s1 % 60) as i64},
            validity: Interval::ALL,
        },
        1 => HgMutation::AddPgVertex {
            labels: vec![Label::new("Station")],
            props: props! {"name" => format!("dock-{s1}")},
            validity: Interval::ALL,
        },
        2 => HgMutation::AddPgEdge {
            src: VertexId::from((s1 as usize) % nv),
            dst: VertexId::from((s2 as usize) % nv),
            labels: vec![Label::new(if s2.is_multiple_of(2) { "USES" } else { "TX" })],
            props: props! {},
            validity: Interval::ALL,
        },
        3 => {
            *clock += 10;
            HgMutation::Append {
                series: SeriesId::new(0),
                t: Timestamp::from_millis(*clock),
                row: vec![(s1 % 100) as f64],
            }
        }
        4 => HgMutation::SetProperty {
            el: ElementRef::Vertex(VertexId::from((s1 as usize) % nv)),
            key: "age".to_owned(),
            value: PropertyValue::Static(Value::Int((s2 % 80) as i64)),
        },
        5 => HgMutation::CloseVertex {
            v: VertexId::from((s1 as usize) % nv),
            t: Timestamp::from_millis(10_000 + (s2 % 100) as i64),
        },
        // a mutation that always fails to apply: the registry must take
        // the failed-batch rebuild path and still converge
        _ => HgMutation::Append {
            series: SeriesId::new(999),
            t: Timestamp::from_millis(1),
            row: vec![0.0],
        },
    }
}

/// Applies `muts` the way the engine commits them — prefix up to the
/// first failure — and notifies the registry.
fn commit(reg: &SubscriptionRegistry, hg: &mut HyGraph, muts: &[HgMutation]) {
    let pre_v = hg.topology().vertex_capacity();
    let pre_e = hg.topology().edge_capacity();
    let mut failed = false;
    for m in muts {
        if hg.apply(m).is_err() {
            failed = true;
            break;
        }
    }
    reg.on_commit(hg, muts, pre_v, pre_e, failed);
}

fn encoded(r: &hq::QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    r.encode(&mut w);
    w.into_bytes()
}

proptest! {
    #[test]
    fn delta_stream_replays_to_a_fresh_execution(
        query_sels in proptest::collection::vec(0usize..QUERIES.len(), 1..4),
        ops in proptest::collection::vec(
            (0u8..8, 0u64..u64::MAX, 0u64..u64::MAX), 1..10),
    ) {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(CollectingSink::default());

        // register the chosen standing queries (duplicates exercise the
        // fingerprint-twin path) and keep a locally maintained snapshot
        // per subscription, advanced only by pushed deltas
        let mut subs: Vec<(u64, &str, hq::QueryResult)> = Vec::new();
        for &qi in &query_sels {
            let text = QUERIES[qi];
            let (id, snap) = reg
                .subscribe(&hg, text, 1, sink.clone())
                .map_err(|e| TestCaseError::fail(format!("subscribe {text:?}: {e}")))?;
            subs.push((id, text, snap));
        }

        let mut clock = 1_000i64;
        for (applied, &(op, s1, s2)) in ops.iter().enumerate() {
            let nv = hg.topology().vertex_capacity();
            let m = decode_op(op, s1, s2, nv, &mut clock);
            commit(&reg, &mut hg, std::slice::from_ref(&m));

            // replay everything pushed since the last commit
            let pushed: Vec<(u64, Delta)> =
                sink.deltas.lock().unwrap().drain(..).collect();
            for (sub_id, delta) in &pushed {
                let (_, _, snap) = subs
                    .iter_mut()
                    .find(|(id, _, _)| id == sub_id)
                    .expect("delta for an unknown subscription");
                apply_delta(snap, delta)
                    .map_err(|e| TestCaseError::fail(format!("apply_delta: {e}")))?;
            }

            // every maintained snapshot equals a from-scratch run, in
            // both execution modes, byte for byte
            for (id, text, snap) in &subs {
                let q = hq::parser::parse(text).expect("pool queries parse");
                for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                    let fresh = hq::execute_mode(&hg, &q, mode).map_err(|e| {
                        TestCaseError::fail(format!("oracle {text:?}: {e}"))
                    })?;
                    prop_assert_eq!(
                        &encoded(snap),
                        &encoded(&fresh),
                        "sub {} ({:?}) diverged after op {} ({:?} mode)",
                        id, text, applied, mode
                    );
                }
            }
        }
        let closed = sink.closed.lock().unwrap();
        prop_assert!(
            closed.is_empty(),
            "no standing query may be dropped by this workload: {closed:?}"
        );
    }
}

/// A deterministic floor under the property: one multi-mutation batch
/// mixing a vertex add, an edge add, and an append converges every
/// query shape in the pool at once.
#[test]
fn fixed_mixed_batch_converges_every_shape() {
    let mut hg = instance();
    let reg = SubscriptionRegistry::new(SubConfig::default());
    let sink = Arc::new(CollectingSink::default());
    let mut subs: Vec<(u64, &str, hq::QueryResult)> = QUERIES
        .iter()
        .map(|text| {
            let (id, snap) = reg
                .subscribe(&hg, text, 1, sink.clone())
                .expect("subscribe");
            (id, *text, snap)
        })
        .collect();

    let batch = vec![
        HgMutation::AddPgVertex {
            labels: vec![Label::new("User")],
            props: props! {"name" => "grace", "age" => 50i64},
            validity: Interval::ALL,
        },
        // grace (the fixture seeds vertices 0..=3) picks up the card
        HgMutation::AddPgEdge {
            src: VertexId::from(4usize),
            dst: VertexId::from(1usize),
            labels: vec![Label::new("USES")],
            props: props! {},
            validity: Interval::ALL,
        },
        HgMutation::Append {
            series: SeriesId::new(0),
            t: Timestamp::from_millis(300),
            row: vec![42.0],
        },
    ];
    commit(&reg, &mut hg, &batch);

    for (sub_id, delta) in sink.deltas.lock().unwrap().iter() {
        let (_, _, snap) = subs
            .iter_mut()
            .find(|(id, _, _)| id == sub_id)
            .expect("delta for an unknown subscription");
        apply_delta(snap, delta).expect("apply_delta");
    }
    for (_, text, snap) in &subs {
        let q = hq::parser::parse(text).expect("parse");
        let fresh = hq::execute_mode(&hg, &q, ExecMode::Sequential).expect("oracle");
        assert_eq!(
            encoded(snap),
            encoded(&fresh),
            "{text:?} diverged after the mixed batch"
        );
    }
    assert!(sink.closed.lock().unwrap().is_empty());
}
