//! Property-based tests of the core invariants, spanning crates.

use hygraph::prelude::*;
use hygraph::ts::ops;
use hygraph::ts::store::{AggKind, Summary};
use proptest::prelude::*;

fn ts(ms: i64) -> Timestamp {
    Timestamp::from_millis(ms)
}

proptest! {
    // ---- interval algebra ------------------------------------------------

    #[test]
    fn interval_intersection_commutes(a0 in -1000i64..1000, al in 0i64..500, b0 in -1000i64..1000, bl in 0i64..500) {
        let a = Interval::new(ts(a0), ts(a0 + al));
        let b = Interval::new(ts(b0), ts(b0 + bl));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        // intersection is contained in both
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_interval(&i));
            prop_assert!(b.contains_interval(&i));
        }
    }

    #[test]
    fn interval_hull_contains_both(a0 in -1000i64..1000, al in 0i64..500, b0 in -1000i64..1000, bl in 0i64..500) {
        let a = Interval::new(ts(a0), ts(a0 + al));
        let b = Interval::new(ts(b0), ts(b0 + bl));
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
    }

    #[test]
    fn truncate_is_idempotent_and_bounded(t in -1_000_000i64..1_000_000, b in 1i64..10_000) {
        let bucket = Duration::from_millis(b);
        let tr = ts(t).truncate(bucket);
        prop_assert_eq!(tr.truncate(bucket), tr, "idempotent");
        prop_assert!(tr <= ts(t));
        prop_assert!(ts(t) - tr < bucket);
    }

    // ---- series construction ---------------------------------------------

    #[test]
    fn from_pairs_always_sorted_unique(pairs in prop::collection::vec((-10_000i64..10_000, -1e6f64..1e6), 0..200)) {
        let s = TimeSeries::from_pairs(pairs.iter().map(|&(t, v)| (ts(t), v)));
        prop_assert!(s.validate().is_ok());
        prop_assert!(s.len() <= pairs.len());
        // every input timestamp is present
        for &(t, _) in &pairs {
            prop_assert!(s.value_at(ts(t)).is_some());
        }
    }

    #[test]
    fn upsert_sequence_preserves_invariant(ops in prop::collection::vec((-5_000i64..5_000, -1e3f64..1e3), 0..300)) {
        let mut s = TimeSeries::new();
        for &(t, v) in &ops {
            s.upsert(ts(t), v);
        }
        prop_assert!(s.validate().is_ok());
        // last write wins
        if let Some(&(t_last, v_last)) = ops.last() {
            if ops.iter().rev().skip(1).all(|&(t, _)| t != t_last) {
                prop_assert_eq!(s.value_at(ts(t_last)), Some(v_last));
            }
        }
    }

    // ---- store vs naive equivalence ----------------------------------------

    #[test]
    fn tsstore_range_equals_naive(
        pairs in prop::collection::vec((-50_000i64..50_000, -1e3f64..1e3), 1..150),
        q0 in -60_000i64..60_000,
        qlen in 0i64..80_000,
        chunk in 1i64..20_000,
    ) {
        let mut store = TsStore::with_chunk_width(Duration::from_millis(chunk));
        let id = SeriesId::new(0);
        for &(t, v) in &pairs {
            store.insert(id, ts(t), v);
        }
        let naive = TimeSeries::from_pairs(pairs.iter().map(|&(t, v)| (ts(t), v)));
        let iv = Interval::new(ts(q0), ts(q0 + qlen));
        let got = store.range(id, &iv);
        let want = naive.slice(&iv);
        prop_assert_eq!(got, want);
        // aggregates agree too
        let sm = store.summarize(id, &iv);
        let nv = naive.range(&iv);
        let nsm = Summary::of(nv.values);
        prop_assert_eq!(sm.count, nsm.count);
        prop_assert!((sm.sum - nsm.sum).abs() < 1e-6);
        if sm.count > 0 {
            prop_assert_eq!(sm.min, nsm.min);
            prop_assert_eq!(sm.max, nsm.max);
        }
    }

    #[test]
    fn sliding_agg_equals_naive(
        n in 1usize..120,
        width in 1i64..200,
        kind in prop::sample::select(vec![AggKind::Mean, AggKind::Min, AggKind::Max, AggKind::Sum, AggKind::Count]),
    ) {
        // irregular but ordered timestamps
        let s = TimeSeries::from_pairs((0..n).map(|i| {
            (ts((i as i64) * 7 + ((i as i64 * 13) % 5)), ((i * 31) % 17) as f64 - 8.0)
        }));
        let w = Duration::from_millis(width);
        let fast = ops::aggregate::sliding(&s, w, kind);
        prop_assert_eq!(fast.len(), s.len());
        for (i, (t, got)) in fast.iter().enumerate() {
            let lo = t - w;
            let vals: Vec<f64> = s.iter().filter(|(u, _)| *u >= lo && *u <= t).map(|(_, v)| v).collect();
            let want = Summary::of(&vals).get(kind).expect("window holds at least the point itself");
            prop_assert!((got - want).abs() < 1e-9, "idx {} kind {:?}", i, kind);
        }
    }

    // ---- graph invariants -------------------------------------------------

    #[test]
    fn snapshot_monotone_in_validity(seed in 0u64..500) {
        let horizon = Interval::new(ts(0), ts(10_000));
        let g = hygraph::datagen::random::random_graph(20, 60, &["N"], horizon, seed);
        // a snapshot never contains an element invalid at that instant
        for t_ms in [0i64, 2_500, 5_000, 7_500, 9_999] {
            let snap = hygraph::graph::snapshot::snapshot(&g, ts(t_ms));
            for v in snap.vertices() {
                prop_assert!(v.validity.contains(ts(t_ms)));
            }
            for e in snap.edges() {
                prop_assert!(e.validity.contains(ts(t_ms)));
                prop_assert!(snap.contains_vertex(e.src) && snap.contains_vertex(e.dst));
            }
        }
    }

    #[test]
    fn components_count_bounded(seed in 0u64..300) {
        let horizon = Interval::new(ts(0), ts(1_000));
        let g = hygraph::datagen::random::random_graph(30, 40, &["N"], horizon, seed);
        let (assign, n) = hygraph::graph::algorithms::components::connected_components(&g);
        prop_assert!(n >= 1 && n <= g.vertex_count());
        prop_assert_eq!(assign.len(), g.vertex_count());
        // component ids are dense 0..n
        for &c in assign.values() {
            prop_assert!(c < n);
        }
    }

    // ---- correlation bounds --------------------------------------------------

    #[test]
    fn pearson_bounded(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 3.0).collect();
        if let Some(r) = ops::correlate::pearson(&xs, &ys) {
            prop_assert!((-1.0..=1.0).contains(&r));
            prop_assert!(r > 0.999, "affine positive transform must give r≈1, got {}", r);
        }
        let mut zs = xs.clone();
        zs.reverse();
        if let Some(r) = ops::correlate::pearson(&xs, &zs) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    // ---- downsampling bounds ----------------------------------------------------

    #[test]
    fn lttb_within_bounds(n in 3usize..300, k in 3usize..100) {
        let s = TimeSeries::generate(ts(0), Duration::from_millis(3), n, |i| ((i * 37) % 23) as f64);
        let d = ops::downsample::lttb(&s, k);
        prop_assert!(d.len() <= n.max(k));
        prop_assert!(d.validate().is_ok());
        if k < n {
            prop_assert_eq!(d.len(), k);
            prop_assert_eq!(d.first(), s.first());
            prop_assert_eq!(d.last(), s.last());
        }
        // downsampled values are a subset of the original values
        for (t, v) in d.iter() {
            prop_assert_eq!(s.value_at(t), Some(v));
        }
    }

    // ---- HyQL parser totality ---------------------------------------------------

    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        // any input: parse must return Ok or Err, never panic
        let _ = hygraph::query_engine::parser::parse(&input);
    }

    #[test]
    fn parser_roundtrips_simple_queries(
        // prefixes chosen so no generated identifier collides with a
        // (case-insensitive) reserved word like IN, AS, MIN, ...
        label in "Lbl[a-z]{0,5}",
        key in "k[a-z]{0,5}",
        threshold in -1000i64..1000,
        limit in 1usize..50,
    ) {
        let q = format!(
            "MATCH (a:{label})-[e:TX]->(b) WHERE a.{key} > {threshold} RETURN a.{key} AS x ORDER BY x LIMIT {limit}"
        );
        let parsed = hygraph::query_engine::parser::parse(&q).expect("well-formed query parses");
        prop_assert_eq!(parsed.limit, Some(limit));
        prop_assert_eq!(parsed.patterns[0].start.labels[0].as_str(), label.as_str());
    }
}

// ---- model-level property tests (non-proptest loops kept deterministic) ----

proptest! {
    #[test]
    fn hygraph_validate_accepts_generated(seed in 0u64..200) {
        let data = hygraph::datagen::fraud::generate(hygraph::datagen::fraud::FraudConfig {
            users: 20,
            merchants: 8,
            hours: 48,
            seed,
            ..Default::default()
        });
        prop_assert!(data.hygraph.validate().is_ok());
    }

    #[test]
    fn kmeans_partitions_everything(k in 1usize..6, seed in 0u64..100) {
        use std::collections::HashMap;
        let mut points = HashMap::new();
        for i in 0..30u64 {
            let x = ((i.wrapping_mul(seed + 1)) % 97) as f64;
            points.insert(VertexId::new(i), vec![x, (x * 1.3) % 11.0]);
        }
        let c = hygraph::analytics::cluster::kmeans(&points, k, 30);
        prop_assert_eq!(c.assignment.len(), 30);
        prop_assert!(c.count <= k);
        for &cid in c.assignment.values() {
            prop_assert!(cid < c.count);
        }
    }
}

// ---- persistence round-trip under arbitrary content -------------------

proptest! {
    #[test]
    fn io_roundtrip_arbitrary_instances(
        n_series in 0usize..4,
        n_pg in 1usize..8,
        n_ts in 0usize..4,
        n_edges in 0usize..10,
        seed in 0u64..1000,
        strings in prop::collection::vec("\\PC{0,12}", 8),
    ) {
        use hygraph::core::io;
        use hygraph::core::HyGraph;
        let mut hg = HyGraph::new();
        let mut sids = Vec::new();
        for k in 0..n_series {
            let s = hygraph::datagen::random::random_walk(5 + k * 3, 1.0, 50.0, seed + k as u64);
            sids.push(hg.add_univariate_series(&format!("s{k}"), &s));
        }
        let mut vs = Vec::new();
        for k in 0..n_pg {
            let mut props = PropertyMap::new();
            props.set("idx", k as i64);
            props.set("tag", strings[k % strings.len()].as_str());
            if let Some(&sid) = sids.first() {
                props.set("attached", sid);
            }
            vs.push(hg.add_pg_vertex([format!("L{}", k % 3)], props));
        }
        for &sid in sids.iter().take(n_ts) {
            vs.push(hg.add_ts_vertex(["TsV"], sid).expect("series exists"));
        }
        for k in 0..n_edges {
            let a = vs[(seed as usize + k) % vs.len()];
            let b = vs[(seed as usize + 3 * k + 1) % vs.len()];
            let _ = hg.add_pg_edge(a, b, ["E"], PropertyMap::new());
        }
        prop_assume!(hg.validate().is_ok());
        let text = io::to_string(&hg).expect("serialises");
        let back = io::from_str(&text).expect("round-trip parses");
        prop_assert_eq!(back.vertex_count(), hg.vertex_count());
        prop_assert_eq!(back.edge_count(), hg.edge_count());
        prop_assert_eq!(back.series_count(), hg.series_count());
        // canonical: re-serialisation is identical
        prop_assert_eq!(io::to_string(&back).expect("serialises"), text);
    }
}
