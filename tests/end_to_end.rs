//! End-to-end integration tests spanning datagen → core → query →
//! analytics → storage.

use hygraph::analytics::pipeline::{self, PipelineConfig};
use hygraph::core::interfaces::{export, import};
use hygraph::datagen::{bike, fraud};
use hygraph::prelude::*;
use hygraph::query;

#[test]
fn bike_dataset_full_flow() {
    let data = bike::generate(bike::BikeConfig {
        stations: 25,
        days: 7,
        tick: Duration::from_mins(30),
        avg_degree: 4,
        seed: 99,
    });
    let hg = data.to_hygraph();
    hg.validate().expect("generated instance is valid");

    // HyQL over the generated instance
    let week = 7 * 86_400_000i64;
    let r = query(
        &hg,
        &format!(
            "MATCH (s:Station) \
             WHERE MEAN(s.availability IN [0, {week})) > 0 \
             RETURN s.name AS name, MIN(s.availability IN [0, {week})) AS lo \
             ORDER BY name"
        ),
    )
    .expect("query runs");
    assert_eq!(r.len(), 25, "every station has availability data");
    // the min can never go below zero by construction
    for row in &r.rows {
        assert!(row[1].as_f64().expect("numeric") >= 0.0);
    }

    // graph algorithms run on the unified topology
    let (_, components) =
        hygraph::graph::algorithms::components::connected_components(hg.topology());
    assert!(components >= 1);

    // metric evolution annotates and preserves validity
    let mut hg = hg;
    let instants = [Timestamp::ZERO, Timestamp::from_millis(week / 2)];
    let n = hygraph::analytics::metric_evolution::annotate_metric_evolution(
        &mut hg,
        hygraph::analytics::metric_evolution::Metric::Degree,
        &instants,
    )
    .expect("annotation runs");
    assert_eq!(n, 25);
    hg.validate().expect("still valid after annotation");
}

#[test]
fn fraud_flow_query_pipeline_agree() {
    let data = fraud::generate(fraud::FraudConfig {
        users: 60,
        merchants: 20,
        hours: 24 * 7,
        ..Default::default()
    });
    let users = data.users.clone();
    let fraudsters = data.fraudsters.clone();
    let mut hg = data.hygraph;

    // HyQL sees the high transactions of fraud bursts
    let r = query(
        &hg,
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         WHERE t.amount > 1000 RETURN DISTINCT u.name AS who ORDER BY who",
    )
    .expect("query runs");
    assert!(
        r.len() >= fraudsters.len(),
        "at least every fraudster surfaces in the high-amount query"
    );

    // the pipeline nails the ground truth
    let report = pipeline::run(&mut hg, PipelineConfig::default()).expect("pipeline runs");
    for (i, &u) in users.iter().enumerate() {
        let v = report.verdict(u).expect("user judged");
        assert_eq!(
            v.suspicious,
            fraudsters.contains(&i),
            "user {i} verdict mismatch: {v:?}"
        );
    }
    hg.validate().expect("annotated instance valid");
}

#[test]
fn roundtrip_losslessness_r1() {
    // TPG -> HyGraph -> TPG and series -> HyGraph -> series
    let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(50_000));
    let g = hygraph::datagen::random::random_graph(40, 120, &["X", "Y"], horizon, 5);
    let hg = import::graph_to_hygraph(&g);
    let back = export::to_temporal_graph(&hg, export::TsProjection::Exclude);
    assert_eq!(back.vertex_count(), g.vertex_count());
    assert_eq!(back.edge_count(), g.edge_count());
    for v in g.vertices() {
        let bv = back.vertex(v.id).expect("preserved");
        assert_eq!(bv.labels, v.labels);
        assert_eq!(bv.props, v.props);
        assert_eq!(bv.validity, v.validity);
    }
    for (e_orig, e_back) in g.edges().zip(back.edges()) {
        assert_eq!(e_orig.src, e_back.src);
        assert_eq!(e_orig.dst, e_back.dst);
        assert_eq!(e_orig.props, e_back.props);
        assert_eq!(e_orig.validity, e_back.validity);
    }

    let series = hygraph::datagen::random::random_walk(500, 1.0, 100.0, 3);
    let mut hg = HyGraph::new();
    let sid = hg.add_univariate_series("walk", &series);
    let out = export::extract_series(&hg);
    assert_eq!(out[0].0, sid);
    assert_eq!(out[0].1.to_univariate("walk").expect("column"), series);
}

#[test]
fn hyql_matches_programmatic_pattern_results() {
    let data = fraud::figure2_instance();
    let hg = &data.hygraph;
    // HyQL
    let r = query(
        hg,
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         WHERE t.amount > 1000 RETURN DISTINCT u.name AS who ORDER BY who",
    )
    .expect("query runs");
    // programmatic pattern
    let mut p = hygraph::graph::Pattern::new();
    let u = p.vertex("u", ["User"]);
    let c = p.vertex("c", ["CreditCard"]);
    let m = p.vertex("m", ["Merchant"]);
    p.edge(None, u, c, ["USES"], hygraph::graph::Direction::Out);
    let t = p.edge(Some("t"), c, m, ["TX"], hygraph::graph::Direction::Out);
    p.edge_pred(
        t,
        hygraph::graph::pattern::PropPredicate::new(
            "amount",
            hygraph::graph::pattern::CmpOp::Gt,
            1000.0,
        ),
    );
    let mut programmatic: Vec<VertexId> = p
        .find_all(hg.topology())
        .iter()
        .map(|b| b.vertices["u"])
        .collect();
    programmatic.sort_unstable();
    programmatic.dedup();
    assert_eq!(r.len(), programmatic.len());
}

#[test]
fn views_respect_snapshot_semantics() {
    use hygraph::core::view::HyGraphView;
    let data = fraud::figure2_instance();
    let hg = &data.hygraph;
    let all_users = HyGraphView::new(hg).with_label("User").vertex_count();
    assert_eq!(all_users, 3);
    let ts_vertices = HyGraphView::new(hg)
        .with_kind(ElementKind::Ts)
        .vertex_count();
    assert_eq!(ts_vertices, 3, "three credit cards");
}

#[test]
fn storage_backends_agree_on_bike_workload() {
    use hygraph::storage::harness::{run_query, Workload};
    use hygraph::storage::{backend::QueryId, AllInGraphStore, PolyglotStore};
    let data = bike::generate(bike::BikeConfig {
        stations: 12,
        days: 5,
        tick: Duration::from_mins(20),
        avg_degree: 3,
        seed: 31,
    });
    let w = Workload::for_dataset(&data);
    let aig = AllInGraphStore::load(&data);
    let poly = PolyglotStore::load(&data);
    for q in QueryId::ALL {
        let a = run_query(&aig, &w, q);
        let p = run_query(&poly, &w, q);
        assert!(
            (a - p).abs() < 1e-6 * a.abs().max(1.0),
            "{} disagreement: {a} vs {p}",
            q.name()
        );
    }
}

#[test]
fn persistence_roundtrip_preserves_query_results() {
    use hygraph::core::io;
    let data = fraud::generate(fraud::FraudConfig {
        users: 40,
        merchants: 16,
        hours: 48,
        ..Default::default()
    });
    let hg = data.hygraph;
    let q = "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
             WHERE t.amount > 1000 \
             RETURN u.name AS who, COUNT(t) AS n, MAX(DELTA(c) IN [0, 172800000)) AS peak \
             ORDER BY who";
    let before = query(&hg, q).expect("query runs");

    let text = io::to_string(&hg).expect("serialises");
    let reloaded = io::from_str(&text).expect("parses");
    let after = query(&reloaded, q).expect("query runs after reload");
    assert_eq!(before, after, "results identical after text round-trip");
    // canonical form: serialising the reloaded instance is byte-identical
    assert_eq!(io::to_string(&reloaded).expect("serialises"), text);
}

#[test]
fn label_index_agrees_with_scan() {
    let data = fraud::generate(fraud::FraudConfig {
        users: 30,
        merchants: 12,
        hours: 24,
        ..Default::default()
    });
    let g = data.hygraph.topology();
    for label in ["User", "CreditCard", "Merchant", "Ghost"] {
        let indexed: Vec<_> = g.vertex_ids_with_label(label);
        let scanned: Vec<_> = g
            .vertices()
            .filter(|v| v.has_label(label))
            .map(|v| v.id)
            .collect();
        assert_eq!(indexed, scanned, "label '{label}'");
    }
}
