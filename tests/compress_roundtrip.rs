//! Property tests for the columnar chunk compression and the rollup
//! aggregate paths: sealed blocks must round-trip bit-identically for
//! *any* `f64` payload (NaN bit patterns, signed zeros, infinities,
//! denormals), and every aggregate path — naive per-chunk, rollup
//! pyramid, compressed-with-boundary-decodes — must agree with a plain
//! fold over the raw values.

use hygraph::prelude::*;
use hygraph::ts::compress::SealedBlock;
use hygraph::ts::store::Summary;
use hygraph::ts::{TsOptions, TsStore};
use proptest::prelude::*;

fn ts(ms: i64) -> Timestamp {
    Timestamp::from_millis(ms)
}

/// Maps raw bits to a full-spectrum `f64`: mostly arbitrary bit
/// patterns (which already cover NaN payloads and denormals), with the
/// canonical hostile values mixed in deterministically.
fn hostile_f64(bits: u64) -> f64 {
    const SPECIALS: [f64; 9] = [
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        5e-324, // smallest denormal
    ];
    if bits.is_multiple_of(4) {
        let special = SPECIALS[(bits / 4) as usize % SPECIALS.len()];
        if bits.is_multiple_of(8) {
            special
        } else {
            // NaN with a payload — must survive bit-exactly
            f64::from_bits(0x7ff8_0000_dead_beef ^ (bits >> 32))
        }
    } else {
        f64::from_bits(bits)
    }
}

/// Strictly-increasing offsets from irregular positive gaps.
fn offsets_from_gaps(gaps: &[u64]) -> Vec<u64> {
    let mut acc = 0u64;
    gaps.iter()
        .map(|&g| {
            acc += g;
            acc
        })
        .collect()
}

proptest! {
    // ---- sealed-block codec ---------------------------------------------

    #[test]
    fn sealed_block_roundtrip_is_bit_identical(
        base in -1_000_000_000i64..1_000_000_000,
        gaps in prop::collection::vec(1u64..100_000, 0..300),
        raw_bits in prop::collection::vec(0u64..=u64::MAX, 300),
    ) {
        let key = ts(base);
        let times: Vec<Timestamp> = offsets_from_gaps(&gaps)
            .iter()
            .map(|&o| ts(base + o as i64))
            .collect();
        let values: Vec<f64> = raw_bits[..times.len()].iter().map(|&b| hostile_f64(b)).collect();
        let block = SealedBlock::seal(key, &times, &values);
        let (mut t2, mut v2) = (Vec::new(), Vec::new());
        block.decode_into(key, &mut t2, &mut v2).unwrap();
        prop_assert_eq!(&t2, &times, "timestamps round-trip exactly");
        prop_assert_eq!(v2.len(), values.len());
        for (a, b) in values.iter().zip(&v2) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "values round-trip bit-identically");
        }
        // sealing is canonical: re-sealing the decoded columns yields
        // an identically-sized payload
        let again = SealedBlock::seal(key, &t2, &v2);
        prop_assert_eq!(again.compressed_bytes(), block.compressed_bytes());
    }

    // ---- aggregate-path equivalence --------------------------------------

    #[test]
    fn all_summarize_paths_match_naive_fold(
        pairs in prop::collection::vec((0i64..20_000, -1e6f64..1e6), 1..400),
        lo in 0i64..20_000,
        span in 1i64..20_000,
        fanout in 2usize..8,
    ) {
        let id = SeriesId::new(1);
        let width = Duration::from_millis(500); // many chunks → rollup path
        let mut compressed = TsStore::with_options(
            width,
            TsOptions::default().compress(true).rollup_fanout(fanout),
        );
        let mut plain = TsStore::with_options(
            width,
            TsOptions::default().compress(false).rollup_fanout(fanout),
        );
        for &(t, v) in &pairs {
            compressed.insert(id, ts(t), v);
            plain.insert(id, ts(t), v);
        }
        let iv = Interval::new(ts(lo), ts(lo + span));
        // ground truth: plain fold over the materialised range
        let mut naive = Summary::new();
        plain.scan(id, &iv, |_, v| naive.add(v));
        for (store, name) in [(&compressed, "compressed"), (&plain, "plain")] {
            for (s, path) in [
                (store.summarize(id, &iv), "summarize"),
                (store.summarize_naive(id, &iv), "summarize_naive"),
            ] {
                prop_assert_eq!(s.count, naive.count, "{}/{} count", name, path);
                if naive.count > 0 {
                    prop_assert_eq!(s.min, naive.min, "{}/{} min", name, path);
                    prop_assert_eq!(s.max, naive.max, "{}/{} max", name, path);
                    let scale = naive.sum.abs().max(1.0);
                    prop_assert!(((s.sum - naive.sum) / scale).abs() < 1e-9,
                        "{}/{} sum: {} vs {}", name, path, s.sum, naive.sum);
                }
            }
        }
        // compressed and plain stores agree bit-for-bit (same fold order)
        let (a, b) = (compressed.summarize(id, &iv), plain.summarize(id, &iv));
        prop_assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        let (ra, rb) = (compressed.range(id, &iv), plain.range(id, &iv));
        prop_assert_eq!(ra.times(), rb.times());
        prop_assert_eq!(ra.values(), rb.values());
    }

    // ---- persistence across the compression matrix -----------------------

    #[test]
    fn checkpoint_crosses_compression_settings(
        pairs in prop::collection::vec((0i64..10_000, 0u64..=u64::MAX), 1..200),
        matrix in 0u8..4,
    ) {
        let (write_compressed, read_compressed) = (matrix & 1 != 0, matrix & 2 != 0);
        let id = SeriesId::new(7);
        let width = Duration::from_millis(750);
        let mut st = TsStore::with_options(width, TsOptions::default().compress(write_compressed));
        for &(t, bits) in &pairs {
            st.insert(id, ts(t), hostile_f64(bits));
        }
        let bytes = hygraph::ts::persist::store_to_bytes(&st);
        let back = hygraph::ts::persist::store_from_bytes_with(
            &bytes,
            TsOptions::default().compress(read_compressed),
        ).unwrap();
        // byte-identical query results after recovery
        let (ra, rb) = (st.range(id, &Interval::ALL), back.range(id, &Interval::ALL));
        prop_assert_eq!(ra.times(), rb.times());
        prop_assert_eq!(ra.values().len(), rb.values().len());
        for (a, b) in ra.values().iter().zip(rb.values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let (sa, sb) = (st.summarize(id, &Interval::ALL), back.summarize(id, &Interval::ALL));
        prop_assert_eq!(sa.count, sb.count);
        prop_assert_eq!(sa.sum.to_bits(), sb.sum.to_bits());
        prop_assert_eq!(sa.min.to_bits(), sb.min.to_bits());
        prop_assert_eq!(sa.max.to_bits(), sb.max.to_bits());
        // and the recovered store re-encodes canonically
        prop_assert_eq!(hygraph::ts::persist::store_to_bytes(&back), bytes);
    }
}
