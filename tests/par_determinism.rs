//! Cross-crate determinism properties for the parallel execution layer.
//!
//! Every parallelized path in the workspace promises *bit-identical*
//! results to its sequential counterpart, for any thread count. These
//! properties pin that promise end-to-end on randomly generated inputs
//! for the three flagship paths: PageRank (graph layer), HyQL execution
//! (query layer), and the pairwise correlation matrix (ts layer).
//!
//! The thread pool is forced to 4 threads with a size-1 sequential
//! cutoff, so the `Parallel` runs genuinely chunk work across threads
//! even on single-core CI machines and tiny sampled inputs.

use hygraph::graph::algorithms::pagerank::{pagerank_mode, PageRankConfig};
use hygraph::prelude::*;
use hygraph::query_engine::{execute_mode, parser};
use hygraph::ts::ops::correlate;
use hygraph::types::parallel::{ExecMode, ParallelConfig};
use proptest::prelude::*;

fn force_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        ParallelConfig::new().threads(4).seq_threshold(1).install();
    });
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Uniform in [0, 1) with full f64 mantissa randomness.
fn unit_f64(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

proptest! {
    #[test]
    fn pagerank_parallel_matches_sequential(
        n in 2usize..40,
        extra in 0usize..80,
        seed in 1u64..1_000_000,
    ) {
        force_threads();
        let mut g = TemporalGraph::new();
        let vs: Vec<VertexId> = (0..n).map(|_| g.add_vertex(["N"], props! {})).collect();
        // ring keeps the graph connected; extra random edges add skew,
        // duplicates/self-loops are allowed to fail silently
        for i in 0..n {
            let _ = g.add_edge(vs[i], vs[(i + 1) % n], ["E"], props! {});
        }
        let mut st = seed | 1;
        for _ in 0..extra {
            let a = (xorshift(&mut st) as usize) % n;
            let b = (xorshift(&mut st) as usize) % n;
            let _ = g.add_edge(vs[a], vs[b], ["E"], props! {});
        }
        let seq = pagerank_mode(&g, PageRankConfig::default(), ExecMode::Sequential);
        let par = pagerank_mode(&g, PageRankConfig::default(), ExecMode::Parallel);
        prop_assert_eq!(seq.len(), par.len());
        for (v, s) in &seq {
            prop_assert_eq!(s.to_bits(), par[v].to_bits(), "rank of {:?} drifted", v);
        }
    }

    #[test]
    fn correlation_matrix_parallel_matches_sequential(
        k in 2usize..12,
        len in 4usize..40,
        seed in 1u64..1_000_000,
    ) {
        force_threads();
        let mut st = seed | 1;
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..len).map(|_| unit_f64(&mut st) * 10.0 - 5.0).collect())
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let seq = correlate::correlation_matrix_mode(&refs, ExecMode::Sequential);
        let par = correlate::correlation_matrix_mode(&refs, ExecMode::Parallel);
        prop_assert_eq!(seq.len(), par.len());
        for (rs, rp) in seq.iter().zip(&par) {
            prop_assert_eq!(rs.len(), rp.len());
            for (a, b) in rs.iter().zip(rp) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn query_execute_parallel_matches_sequential(
        n_users in 1usize..8,
        n_cards in 1usize..4,
        seed in 1u64..1_000_000,
    ) {
        force_threads();
        let mut st = seed | 1;
        let mut hg = HyGraph::new();
        for u in 0..n_users {
            let user = hg.add_pg_vertex(["User"], props! {"name" => format!("u{u}")});
            for _ in 0..n_cards {
                let base = unit_f64(&mut st) * 1000.0;
                let s = TimeSeries::generate(
                    Timestamp::ZERO,
                    Duration::from_hours(1),
                    24,
                    move |h| base + h as f64,
                );
                let sid = hg.add_univariate_series("spend", &s);
                let card = hg.add_ts_vertex(["Card"], sid).unwrap();
                let fee = (unit_f64(&mut st) * 10.0 * 100.0).round() / 100.0;
                hg.add_pg_edge(user, card, ["USES"], props! {"fee" => fee}).unwrap();
            }
        }
        // a flat query mixing WHERE, a per-row series aggregate, and
        // ordering — exercises the per-binding parallel filter/project
        let q_flat = parser::parse(
            "MATCH (u:User)-[e:USES]->(c:Card) \
             WHERE MEAN(DELTA(c) IN [0, 86400000)) > 300 \
             RETURN u.name AS who, e.fee AS fee ORDER BY who, fee",
        ).unwrap();
        // a grouped query — exercises parallel pre-aggregation eval with
        // the sequential in-order group fold
        let q_grouped = parser::parse(
            "MATCH (u:User)-[e:USES]->(c:Card) \
             RETURN u.name AS who, COUNT(c) AS cards, SUM(e.fee) AS fees \
             ORDER BY who",
        ).unwrap();
        for q in [&q_flat, &q_grouped] {
            let seq = execute_mode(&hg, q, ExecMode::Sequential).unwrap();
            let par = execute_mode(&hg, q, ExecMode::Parallel).unwrap();
            prop_assert_eq!(&seq.columns, &par.columns);
            prop_assert_eq!(&seq.rows, &par.rows);
        }
    }
}
