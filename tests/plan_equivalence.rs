//! Cross-crate equivalence property for the plan-based query pipeline.
//!
//! Randomly composed HyQL queries must produce **byte-identical** encoded
//! results through the legacy one-pass interpreter
//! ([`hygraph_query::execute_interpreted_mode`]) and the
//! plan → optimize → physical pipeline ([`hygraph_query::execute_mode`]),
//! in both execution modes. Queries that fail must fail with the *same*
//! error through both paths — the optimizer is not allowed to turn an
//! erroring query into a succeeding one (or vice versa), nor to change
//! which error surfaces first.

use hygraph::prelude::*;
use hygraph::query_engine as hq;
use hygraph::types::bytes::ByteWriter;
use hygraph::types::parallel::ExecMode;
use hygraph::types::props;
use proptest::prelude::*;

/// The fixture instance: two users, two ts-cards (integer-valued series,
/// so float aggregates are exact on every path), two merchants, TX edges
/// with mixed amounts. Rich enough that every pattern pool below matches
/// at least sometimes.
fn instance() -> HyGraph {
    let spend = TimeSeries::generate(Timestamp::ZERO, Duration::from_hours(1), 48, |h| {
        ((h * 7) % 23) as f64
    });
    let slow = TimeSeries::generate(Timestamp::ZERO, Duration::from_hours(2), 24, |h| {
        ((h * 3) % 11) as f64
    });
    HyGraphBuilder::new()
        .univariate("spend", &spend)
        .univariate("slow", &slow)
        .pg_vertex("u1", ["User"], props! {"name" => "alice", "age" => 34})
        .pg_vertex("u2", ["User"], props! {"name" => "bob", "age" => 27})
        .ts_vertex("c1", ["Card"], "spend")
        .ts_vertex("c2", ["Card"], "slow")
        .pg_vertex("m1", ["Merchant"], props! {"name" => "m1", "fee" => 2.5})
        .pg_vertex("m2", ["Merchant"], props! {"name" => "m2", "fee" => 1.0})
        .pg_edge(None, "u1", "c1", ["USES"], props! {})
        .pg_edge(None, "u2", "c2", ["USES"], props! {})
        .pg_edge(Some("t1"), "c1", "m1", ["TX"], props! {"amount" => 1200.0})
        .pg_edge(Some("t2"), "c1", "m2", ["TX"], props! {"amount" => 30.0})
        .pg_edge(Some("t3"), "c2", "m1", ["TX"], props! {"amount" => 20.0})
        .build()
        .unwrap()
        .hygraph
}

/// Pattern shapes, with per-shape pools of WHERE / RETURN / HAVING
/// fragments that reference only the variables that shape binds. The
/// pools deliberately mix pushable comparisons, non-pushable boolean
/// structure, constant-foldable subtrees, series aggregates (including
/// a reversed-range one that must *error identically* on both paths),
/// and row aggregates.
struct Shape {
    pattern: &'static str,
    filters: &'static [&'static str],
    // (alias, full RETURN item)
    returns: &'static [(&'static str, &'static str)],
    havings: &'static [&'static str],
}

const SHAPES: &[Shape] = &[
    Shape {
        pattern: "(u:User)",
        filters: &[
            "u.name = 'alice'",
            "u.age > 30",
            "NOT u.age > 30",
            "u.name = 'alice' OR u.age > 26",
            "u.age > 20 AND NOT u.name = 'bob'",
            "TRUE",
            "1 > 2",
            "u.age > 10 AND 2 > 1",
        ],
        returns: &[
            ("name", "u.name AS name"),
            ("age", "u.age AS age"),
            ("n", "COUNT(*) AS n"),
            ("dn", "COUNT(DISTINCT u.name) AS dn"),
        ],
        havings: &["COUNT(*) > 0", "COUNT(*) > 1"],
    },
    Shape {
        pattern: "(u:User)-[:USES]->(c:Card)",
        filters: &[
            "u.age > 26",
            "MEAN(DELTA(c) IN [0, 86400000)) > 8",
            "u.name = 'alice' AND SUM(DELTA(c) IN [0, 43200000)) > 50",
            // reversed range: must produce the same error on both paths
            "MEAN(DELTA(c) IN [86400000, 0)) > 1",
        ],
        returns: &[
            ("who", "u.name AS who"),
            ("peak", "MAX(DELTA(c) IN [0, 86400000)) AS peak"),
            ("total", "SUM(DELTA(c) IN [0, 43200000)) AS total"),
            ("n", "COUNT(*) AS n"),
        ],
        havings: &["COUNT(*) > 0"],
    },
    Shape {
        pattern: "(u:User)-[:USES]->(c:Card)-[t:TX]->(m:Merchant)",
        filters: &[
            "t.amount > 100",
            "t.amount > 100 AND m.fee > 2",
            "m.name = 'm1'",
            "MAX(DELTA(c) IN [0, 86400000)) > 10 OR t.amount > 25",
            "NOT t.amount > 100",
            "t.amount > 10 AND u.name = 'alice' AND m.fee > 0.5",
        ],
        returns: &[
            ("who", "u.name AS who"),
            ("amt", "t.amount AS amt"),
            ("mname", "m.name AS mname"),
            ("total", "SUM(t.amount) AS total"),
            ("txs", "COUNT(t) AS txs"),
            ("peak", "MAX(DELTA(c) IN [0, 3600000)) AS peak"),
        ],
        havings: &["SUM(t.amount) > 50", "COUNT(*) > 1"],
    },
    Shape {
        pattern: "(u:User)-[*1..2]->(x)",
        filters: &["u.age > 26", "x.name = 'm1'"],
        returns: &[("reach", "COUNT(x) AS reach"), ("who", "u.name AS who")],
        havings: &["COUNT(x) > 1"],
    },
];

/// Deterministically assembles a parseable HyQL query from six choice
/// words. Clause order follows the grammar: MATCH [WHERE] [VALID AT]
/// RETURN [DISTINCT] items [HAVING] [ORDER BY] [LIMIT].
fn build_query(
    pat_sel: u64,
    filt_sel: u64,
    ret_sel: u64,
    hav_sel: u64,
    ord_sel: u64,
    misc_sel: u64,
) -> String {
    let shape = &SHAPES[(pat_sel % SHAPES.len() as u64) as usize];
    let mut q = format!("MATCH {}", shape.pattern);

    // WHERE present in ~2/3 of cases
    let nf = shape.filters.len() as u64;
    let fi = filt_sel % (nf * 3 / 2);
    if fi < nf {
        q.push_str(&format!(" WHERE {}", shape.filters[fi as usize]));
    }

    // VALID AT in ~1/4 of cases
    if misc_sel.is_multiple_of(4) {
        q.push_str(" VALID AT 0");
    }

    // non-empty subset of the RETURN pool
    let nret = shape.returns.len();
    let mask = (ret_sel % ((1u64 << nret) - 1)) + 1;
    let chosen: Vec<&(&str, &str)> = shape
        .returns
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask >> i & 1 == 1)
        .map(|(_, r)| r)
        .collect();
    let distinct = if misc_sel >> 2 & 1 == 1 {
        "DISTINCT "
    } else {
        ""
    };
    let items: Vec<&str> = chosen.iter().map(|&&(_, item)| item).collect();
    q.push_str(&format!(" RETURN {distinct}{}", items.join(", ")));

    // HAVING in ~1/3 of cases
    let nh = shape.havings.len() as u64;
    let hi = hav_sel % (nh * 3);
    if hi < nh {
        q.push_str(&format!(" HAVING {}", shape.havings[hi as usize]));
    }

    // ORDER BY in ~1/2 of cases: usually a produced alias, occasionally
    // an unknown column (both paths must raise the same error)
    match ord_sel % 4 {
        0 | 1 => {}
        2 => {
            let &&(alias, _) = &chosen[(ord_sel >> 3) as usize % chosen.len()];
            let dir = if ord_sel >> 2 & 1 == 1 { " DESC" } else { "" };
            q.push_str(&format!(" ORDER BY {alias}{dir}"));
        }
        _ => q.push_str(" ORDER BY zzz"),
    }

    // LIMIT in ~1/4 of cases
    if misc_sel >> 3 & 3 == 0 {
        q.push_str(&format!(" LIMIT {}", misc_sel >> 5 & 3));
    }

    q
}

fn encoded(r: &hq::QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    r.encode(&mut w);
    w.into_bytes()
}

proptest! {
    #[test]
    fn planner_is_equivalent_to_interpreter(
        sels in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX,
                 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX)
    ) {
        let (a, b, c, d, e, f) = sels;
        let text = build_query(a, b, c, d, e, f);
        let hg = instance();
        let q = match hq::parser::parse(&text) {
            Ok(q) => q,
            Err(err) => {
                return Err(TestCaseError::fail(format!(
                    "generated query must parse, got {err}: {text:?}"
                )))
            }
        };
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let legacy = hq::execute_interpreted_mode(&hg, &q, mode);
            let planned = hq::execute_mode(&hg, &q, mode);
            match (&legacy, &planned) {
                (Ok(l), Ok(p)) => prop_assert_eq!(
                    encoded(l),
                    encoded(p),
                    "result bytes diverge in {:?} for {:?}",
                    mode,
                    text
                ),
                (Err(l), Err(p)) => prop_assert_eq!(
                    l.to_string(),
                    p.to_string(),
                    "errors diverge in {:?} for {:?}",
                    mode,
                    text
                ),
                _ => {
                    return Err(TestCaseError::fail(format!(
                        "outcome diverges in {mode:?} for {text:?}: \
                         interpreter {legacy:?} vs planner {planned:?}"
                    )))
                }
            }
        }
    }
}

/// The fixed Table-1-shaped corner cases, byte-for-byte, both modes —
/// a deterministic floor under the random property above.
#[test]
fn planner_matches_interpreter_on_fixed_corner_cases() {
    let hg = instance();
    let corner_cases = [
        "MATCH (u:User) RETURN u.name AS name ORDER BY name",
        "MATCH (u:User) WHERE 1 > 2 RETURN u.name AS name",
        "MATCH (u:User) RETURN COUNT(*) AS n",
        "MATCH (u:User)-[:USES]->(c:Card) \
         WHERE MEAN(DELTA(c) IN [0, 86400000)) > 8 \
         RETURN u.name AS who ORDER BY who",
        "MATCH (u:User)-[:USES]->(c:Card)-[t:TX]->(m:Merchant) \
         WHERE t.amount > 25 AND m.fee > 0.5 \
         RETURN u.name AS who, SUM(t.amount) AS total \
         HAVING SUM(t.amount) > 10 ORDER BY total DESC LIMIT 3",
        "MATCH (u:User)-[*1..2]->(x) RETURN DISTINCT u.name AS who ORDER BY who",
        "MATCH (u:User) RETURN u.name AS name ORDER BY zzz",
    ];
    for text in corner_cases {
        let q = hq::parser::parse(text).expect("fixed query parses");
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let legacy = hq::execute_interpreted_mode(&hg, &q, mode);
            let planned = hq::execute_mode(&hg, &q, mode);
            match (&legacy, &planned) {
                (Ok(l), Ok(p)) => assert_eq!(
                    encoded(l),
                    encoded(p),
                    "bytes diverge in {mode:?} for {text:?}"
                ),
                (Err(l), Err(p)) => assert_eq!(
                    l.to_string(),
                    p.to_string(),
                    "errors diverge in {mode:?} for {text:?}"
                ),
                _ => panic!(
                    "outcome diverges in {mode:?} for {text:?}: \
                     interpreter {legacy:?} vs planner {planned:?}"
                ),
            }
        }
    }
}
