//! # HyGraph — a unified hybrid model for property graphs and time series
//!
//! A Rust implementation of the HyGraph vision (*"Towards Hybrid Graphs:
//! Unifying Property Graphs and Time Series"*, EDBT 2025): temporal
//! property graphs and time series in **one** data model, with both as
//! first-class citizens.
//!
//! ```
//! use hygraph::prelude::*;
//!
//! // build: a user (pg-vertex) using a credit card whose identity IS
//! // its spending series (ts-vertex)
//! let spending = TimeSeries::generate(
//!     Timestamp::ZERO,
//!     Duration::from_hours(1),
//!     48,
//!     |h| if (20..24).contains(&h) { 1500.0 } else { 40.0 },
//! );
//! let built = HyGraphBuilder::new()
//!     .univariate("spending", &spending)
//!     .pg_vertex("alice", ["User"], props! {"name" => "alice"})
//!     .ts_vertex("card", ["CreditCard"], "spending")
//!     .pg_edge(None, "alice", "card", ["USES"], props! {})
//!     .build()
//!     .unwrap();
//!
//! // query: graph pattern + series aggregate in one declarative query
//! let result = hygraph::query(
//!     &built.hygraph,
//!     "MATCH (u:User)-[:USES]->(c:CreditCard) \
//!      WHERE MAX(DELTA(c) IN [0, 172800000)) > 1000 \
//!      RETURN u.name AS who",
//! )
//! .unwrap();
//! assert_eq!(result.rows[0][0], Value::Str("alice".into()));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | ids, timestamps, intervals, values, property maps |
//! | [`ts`] | time-series substrate: [`ts::TimeSeries`], chunked [`ts::TsStore`], the full operator library |
//! | [`graph`] | temporal property graphs: storage, snapshots, traversal, pattern matching, algorithms |
//! | [`core`] | the HGM model: [`core::HyGraph`], builders, import/export interfaces, views |
//! | [`query`] | HyQL: the hybrid declarative query language + the four roadmap hybrid operators |
//! | [`analytics`] | metricEvolution, hybrid embeddings/clustering/classification, contextual detection, pattern mining, the fraud pipeline |
//! | [`datagen`] | deterministic synthetic datasets (bike sharing, fraud, random) |
//! | [`storage`] | the Table-1 experiment: all-in-graph vs polyglot persistence backends |
//! | [`persist`] | durable storage engine: write-ahead log, checkpoints, crash recovery, per-shard WAL streams |
//! | [`temporal`] | transaction-time history: timestamped commit log, snapshot reconstruction, `AS OF` / `BETWEEN` time travel |
//! | [`sub`] | standing queries: live HyQL subscriptions maintained by incremental deltas |
//! | [`server`] | concurrent query serving: sharded engine with epoch snapshot reads, wire protocol, worker pool, backpressure, graceful shutdown |
//! | [`metrics`] | observability: counters, latency histograms, slow-query log, wire-exposed stats |
//!
//! Runtime knobs (`HYGRAPH_*` environment variables) are documented in
//! `OPERATIONS.md` at the repository root.

pub use hygraph_analytics as analytics;
pub use hygraph_core as core;
pub use hygraph_datagen as datagen;
pub use hygraph_graph as graph;
pub use hygraph_metrics as metrics;
pub use hygraph_persist as persist;
pub use hygraph_query as query_engine;
pub use hygraph_server as server;
pub use hygraph_storage as storage;
pub use hygraph_sub as sub;
pub use hygraph_temporal as temporal;
pub use hygraph_ts as ts;
pub use hygraph_types as types;

pub use hygraph_core::{ElementKind, ElementRef, HyGraph, HyGraphBuilder, Subgraph};
pub use hygraph_query::query;

/// Common imports for working with HyGraph.
pub mod prelude {
    pub use hygraph_core::{ElementKind, ElementRef, HyGraph, HyGraphBuilder, Subgraph};
    pub use hygraph_graph::{Pattern, TemporalGraph};
    pub use hygraph_ts::{MultiSeries, TimeSeries, TsStore};
    pub use hygraph_types::{
        props, Duration, EdgeId, HyGraphError, Interval, Label, PropertyKey, PropertyMap,
        PropertyValue, Result, SeriesId, SubgraphId, Timestamp, Value, VertexId,
    };
}
