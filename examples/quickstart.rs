//! Quickstart: build a HyGraph instance, inspect the model functions,
//! and run HyQL queries mixing structure and time series.
//!
//! Run with: `cargo run --example quickstart`

use hygraph::prelude::*;
use hygraph::query;

fn main() -> Result<()> {
    // ---- 1. build an instance -----------------------------------------
    // A user (pg-vertex) owns a credit card. The card is a *time-series
    // vertex*: its identity is its hourly spending series (δ function).
    let spending = TimeSeries::generate(Timestamp::ZERO, Duration::from_hours(1), 48, |h| {
        if (20..24).contains(&h) {
            1200.0 + (h - 20) as f64 * 100.0 // fraud-like burst
        } else {
            40.0 + (h % 5) as f64
        }
    });
    let temperature = TimeSeries::generate(Timestamp::ZERO, Duration::from_hours(1), 48, |h| {
        20.0 + ((h as f64) / 24.0 * std::f64::consts::TAU).sin() * 5.0
    });

    let built = HyGraphBuilder::new()
        .univariate("spending", &spending)
        .univariate("temperature", &temperature)
        .pg_vertex(
            "alice",
            ["User"],
            props! {"name" => "alice", "city" => "lyon"},
        )
        .pg_vertex("shop", ["Merchant"], props! {"name" => "corner-shop"})
        .ts_vertex("card", ["CreditCard"], "spending")
        .pg_edge(None, "alice", "card", ["USES"], props! {})
        .pg_edge(
            Some("tx"),
            "card",
            "shop",
            ["TX"],
            props! {"amount" => 1350.0},
        )
        // a supplementary series attached as a *property* (𝒩_TS value)
        .series_property("shop", "indoor_temp", "temperature")
        .build()?;
    let hg = &built.hygraph;

    println!(
        "instance: {} vertices, {} edges, {} series",
        hg.vertex_count(),
        hg.edge_count(),
        hg.series_count()
    );

    // ---- 2. the model functions ----------------------------------------
    let card = built.v("card");
    let alice = built.v("alice");
    println!("λ(card)  = {:?}", hg.lambda(ElementRef::Vertex(card))?);
    println!("δ(card)  = {:?}", hg.delta(ElementRef::Vertex(card))?);
    println!("ρ(alice) = {}", hg.rho(ElementRef::Vertex(alice))?);
    println!(
        "φ(alice, name) = {}",
        hg.phi(ElementRef::Vertex(alice), "name")?.unwrap()
    );

    // ---- 3. hybrid querying with HyQL ----------------------------------
    let two_days = 48 * 3_600_000i64;
    let r = query(
        hg,
        &format!(
            "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
             WHERE t.amount > 1000 AND MAX(DELTA(c) IN [0, {two_days})) > 1000 \
             RETURN u.name AS who, t.amount AS amount, \
                    MEAN(DELTA(c) IN [0, {two_days})) AS avg_spend"
        ),
    )?;
    println!("\nsuspicious transactions (structure + series evidence):");
    print!("{}", r.render());

    // a series-valued *property* participates the same way
    let r = query(
        hg,
        &format!(
            "MATCH (m:Merchant) \
             RETURN m.name AS shop, MEAN(m.indoor_temp IN [0, {two_days})) AS avg_temp"
        ),
    )?;
    println!("merchant climate (series-valued property):");
    print!("{}", r.render());

    // ---- 4. time-series analytics on graph data --------------------------
    let s = hg
        .delta(ElementRef::Vertex(card))?
        .to_univariate("spending")
        .unwrap();
    let anomalies = hygraph_ts::ops::anomaly::zscore(&s, 3.0);
    println!(
        "spending anomalies: {} burst points detected",
        anomalies.len()
    );
    for a in anomalies.iter().take(3) {
        println!("  at {} value {:.0} (z = {:.1})", a.time, a.value, a.score);
    }
    Ok(())
}
