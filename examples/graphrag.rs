//! The paper's GraphRAG integration plan (§6): HyGraph as an extended
//! knowledge base for retrieval-augmented generation.
//!
//! The three steps the paper describes:
//! 1. a query API + vector similarity search        → `SimilarityIndex`
//! 2. nodes augmented with embeddings capturing
//!    evolutionary graph AND time-series features   → `hybrid_embedding`
//! 3. retrieved nodes used directly as knowledge or
//!    as starting points for subsequent queries     → HyQL follow-up
//!
//! Run with: `cargo run --release --example graphrag`

use hygraph::analytics::embedding::{hybrid_embedding, FastRpConfig, SimilarityIndex};
use hygraph::datagen::fraud::{self, FraudConfig};
use hygraph::prelude::*;
use hygraph::query;

fn main() -> Result<()> {
    // knowledge base: the fraud HyGraph (entities + behaviours over time)
    let data = fraud::generate(FraudConfig {
        users: 120,
        merchants: 40,
        hours: 24 * 7,
        ..Default::default()
    });
    let hg = &data.hygraph;
    println!(
        "knowledge base: {} vertices, {} edges, {} series",
        hg.vertex_count(),
        hg.edge_count(),
        hg.series_count()
    );

    // step 1+2: hybrid embeddings (structure ⊕ temporal behaviour) and an index
    let embeddings = hybrid_embedding(hg, FastRpConfig::default(), Some(4));
    let index = SimilarityIndex::build(&embeddings);
    println!(
        "embedded {} vertices (FastRP ⊕ PCA series features)",
        index.len()
    );

    // retrieval: "find entities that behave like this known fraudster"
    let known_fraudster_idx = *data
        .fraudsters
        .iter()
        .next()
        .expect("dataset has fraudsters");
    let anchor_card = data.cards[known_fraudster_idx];
    let hits = index.neighbours_of(anchor_card, 8);
    println!("\nretrieval: top-8 vertices behaving like {anchor_card} (a known fraud card):");
    let mut retrieved_fraud_cards = 0;
    for (v, score) in &hits {
        let labels = hg.lambda(ElementRef::Vertex(*v))?;
        let is_fraud_card = data
            .cards
            .iter()
            .position(|&c| c == *v)
            .is_some_and(|i| data.fraudsters.contains(&i));
        if is_fraud_card {
            retrieved_fraud_cards += 1;
        }
        println!(
            "  {v} {labels:?} cosine={score:.3}{}",
            if is_fraud_card {
                "  ← fraud card"
            } else {
                ""
            }
        );
    }
    println!(
        "{} of the other {} fraud cards retrieved by pure embedding similarity",
        retrieved_fraud_cards,
        data.fraudsters.len() - 1
    );

    // step 3: retrieved nodes as starting points for follow-up queries —
    // expand each hit into its ego context (the "subsequent queries")
    println!("\ncontext expansion for the top hit:");
    if let Some(&(top, _)) = hits.first() {
        // who uses this card, and where does it transact?
        let owners = query(
            hg,
            "MATCH (u:User)-[:USES]->(c:CreditCard) RETURN u.name AS owner, c AS card",
        )?;
        let owner_row = owners
            .rows
            .iter()
            .find(|r| r[1] == Value::Str(top.to_string()));
        if let Some(row) = owner_row {
            println!("  owner: {}", row[0]);
        }
        let g = hg.topology();
        let merchants: Vec<String> = g
            .neighbors_out(top)
            .filter(|(e, _)| e.has_label("TX"))
            .filter_map(|(_, m)| {
                hg.props(ElementRef::Vertex(m))
                    .ok()?
                    .static_value("name")
                    .map(ToString::to_string)
            })
            .collect();
        println!(
            "  transacts with {} merchants: {:?}",
            merchants.len(),
            &merchants[..merchants.len().min(5)]
        );
        // and its behavioural summary (the series side of the context)
        if let Ok(series) = hg.delta(ElementRef::Vertex(top)) {
            let col = series.column(0).expect("spending column");
            let features = hygraph::ts::ops::features::feature_vector(
                &series.to_univariate(&series.names()[0]).expect("column"),
            );
            println!(
                "  behaviour: {} observations, mean {:.0}, max {:.0}, trend {:+.2}",
                col.len(),
                features[0],
                features[3],
                features[5]
            );
        }
    }
    Ok(())
}
