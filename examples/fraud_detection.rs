//! The paper's running example (§3, Figure 2, Listings 1–2, Figure 4):
//! credit-card fraud detection three ways — graph-only, series-only, and
//! the HyGraph hybrid pipeline.
//!
//! Run with: `cargo run --example fraud_detection`

use hygraph::analytics::pipeline::{self, PipelineConfig};
use hygraph::datagen::fraud;
use hygraph::prelude::*;
use hygraph::query;

fn main() -> Result<()> {
    // ---- the Figure-2 micro instance -----------------------------------
    let mut data = fraud::figure2_instance();
    println!(
        "Figure 2 instance: {} users, {} merchants, {} series",
        data.users.len(),
        data.merchants.len(),
        data.hygraph.series_count()
    );

    // ---- Listing 1: the graph-only way ---------------------------------
    // the paper's Listing 1 core: >1000 transactions to MORE THAN TWO
    // distinct merchants (length(mrs) > 2), via row aggregation + HAVING
    let r = query(
        &data.hygraph,
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         WHERE t.amount > 1000 \
         RETURN u.name AS suspiciousUser, COUNT(DISTINCT m.name) AS merchants \
         HAVING COUNT(DISTINCT m.name) > 2 ORDER BY suspiciousUser",
    )?;
    println!("\nListing 1 (graph-only: >1000 to at least three merchants):");
    print!("{}", r.render());

    // ---- Listing 2: the time-series-only way ---------------------------
    println!("Listing 2 (series-only, z-score outliers on spending):");
    for (i, &sid) in data.spending.iter().enumerate() {
        let s = data
            .hygraph
            .series(sid)?
            .to_univariate("spending")
            .expect("spending column");
        let hits = hygraph::ts::ops::anomaly::zscore(&s, 3.0);
        println!(
            "  User {}: {}",
            i + 1,
            if hits.is_empty() {
                "clean".to_owned()
            } else {
                format!(
                    "{} burst points (max z = {:.1})",
                    hits.len(),
                    hits.iter().map(|a| a.score).fold(0.0, f64::max)
                )
            }
        );
    }

    // ---- the HyGraph way: the Figure-4 pipeline -------------------------
    let report = pipeline::run(&mut data.hygraph, PipelineConfig::default())?;
    println!("\nFigure 4 pipeline (hybrid):");
    println!(
        "{:<8} {:>12} {:>13} {:>13} {:>12}",
        "user", "graph rule", "series rule", "pattern days", "verdict"
    );
    for (i, &u) in data.users.iter().enumerate() {
        let v = report.verdict(u).expect("user judged");
        println!(
            "{:<8} {:>12} {:>13} {:>13} {:>12}",
            format!("User {}", i + 1),
            v.graph_flagged,
            v.series_flagged,
            v.pattern_days,
            if v.suspicious {
                "SUSPICIOUS"
            } else {
                "ordinary"
            }
        );
    }
    println!(
        "\n→ the graph rule alone flags User 1 AND User 3; the hybrid \
         pipeline confirms User 1\n  and clears User 3 (recurring bulk \
         routine with smooth spending = false positive)."
    );

    // ---- scaled run with ground truth -----------------------------------
    let scaled = fraud::generate(fraud::FraudConfig {
        users: 200,
        merchants: 60,
        hours: 24 * 7,
        ..Default::default()
    });
    let truth = scaled.fraudsters.clone();
    let users = scaled.users.clone();
    let mut hg = scaled.hygraph;
    let report = pipeline::run(&mut hg, PipelineConfig::default())?;
    let (mut tp, mut fp, mut fne) = (0, 0, 0);
    let mut graph_only_fp = 0;
    for (i, &u) in users.iter().enumerate() {
        let v = report.verdict(u).expect("user judged");
        match (v.suspicious, truth.contains(&i)) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fne += 1,
            _ => {}
        }
        if v.graph_flagged && !truth.contains(&i) {
            graph_only_fp += 1;
        }
    }
    println!("\nScaled dataset (200 users, 1 week):");
    println!("  graph-only rule:   {} false positives", graph_only_fp);
    println!(
        "  hybrid pipeline:   precision {:.2}, recall {:.2} ({} tp / {} fp / {} fn)",
        tp as f64 / (tp + fp).max(1) as f64,
        tp as f64 / (tp + fne).max(1) as f64,
        tp,
        fp,
        fne
    );
    Ok(())
}
