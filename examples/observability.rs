//! Observability end to end: run a server, drive a workload, then read
//! the metrics back all three ways — the `Stats` wire request, the
//! in-process snapshot, and Prometheus-style text — and finish with the
//! shutdown drain report.
//!
//! Run with: `cargo run --example observability`
//!
//! Knobs (see OPERATIONS.md for the full table):
//!   HYGRAPH_METRICS=0              turn the registry off entirely
//!   HYGRAPH_SLOW_QUERY_MS=250      slow-query capture threshold
//!   HYGRAPH_METRICS_LOG_EVERY_MS=1000  periodic one-line stats log

use hygraph::metrics::MetricsConfig;
use hygraph::prelude::*;
use hygraph::server::{Backend, Client, Server};
use hygraph::types::net::ServerConfig;

fn main() -> Result<()> {
    // Explicit install beats the environment; first caller wins. An
    // aggressive slow-query threshold makes the ring fill up in this
    // tiny demo — a real deployment keeps the 100 ms default.
    hygraph::metrics::install(MetricsConfig {
        slow_query_threshold: std::time::Duration::from_micros(1),
        ..MetricsConfig::default()
    });

    // a small hybrid graph: stations with availability series
    let mut builder = HyGraphBuilder::new();
    for i in 0..8 {
        let series = TimeSeries::generate(Timestamp::ZERO, Duration::from_hours(1), 48, move |h| {
            ((h * 7 + i * 13) % 30) as f64
        });
        let (name, key) = (format!("avail{i}"), format!("station{i}"));
        builder = builder
            .univariate(&name, &series)
            .ts_vertex(&key, ["Station"], &name);
    }
    let built = builder.build()?;

    let server = Server::serve(
        Backend::memory(built.hygraph),
        &ServerConfig::new().addr("127.0.0.1:0").workers(2),
    )?;
    let mut client = Client::connect(server.local_addr())?;

    // a mixed workload: matches, aggregates, and a deliberate parse error
    for _ in 0..5 {
        client.query("MATCH (s:Station) RETURN COUNT(s) AS n")?;
        client.query(
            "MATCH (s:Station) WHERE MEAN(DELTA(s) IN [0, 86400000)) > 10 \
             RETURN COUNT(s) AS busy",
        )?;
    }
    let _ = client.query("MTCH oops"); // counted in query_parse_errors

    // 1. the Stats wire request: one round trip, canonical binary codec
    let snap = client.stats()?;
    println!("== wire snapshot ==");
    println!("{}", snap.summary_line());
    println!(
        "admitted={} completed={} q2_aggregates={} parse_errors={}",
        snap.server.admitted,
        snap.server.completed,
        snap.query
            .class(hygraph::metrics::OpClass::Q2Aggregate)
            .count,
        snap.query.parse_errors,
    );
    println!(
        "queue_wait p95 = {} µs, execute p95 = {} µs",
        snap.server.queue_wait_us.p95(),
        snap.server.execute_us.p95(),
    );

    // 2. the same registry, in process (no socket)
    let local = server.local_client().stats();
    println!("\n== in-process snapshot ==");
    println!("{}", local.summary_line());

    // 3. Prometheus-style exposition text (first lines only, it's long)
    println!("\n== render_text (excerpt) ==");
    for line in snap.render_text().lines().take(12) {
        println!("{line}");
    }
    println!(
        "… plus {} slow-query entries (threshold 1 µs for this demo)",
        snap.slow_queries.len()
    );

    // the shutdown drain is accounted for, too
    let report = server.shutdown()?;
    println!(
        "\nshutdown: drained {} request(s), {} dropped at deadline",
        report.drained, report.dropped_at_deadline
    );
    Ok(())
}
