//! One operation per arrow of the paper's Figure 3: the state-of-the-art
//! data models and the transformations HyGraph unifies.
//!
//! Run with: `cargo run --example hybrid_queries`

use hygraph::core::interfaces::{export, import};
use hygraph::core::view::HyGraphView;
use hygraph::graph::{algorithms, pattern::PropPredicate, snapshot, Direction, Pattern};
use hygraph::prelude::*;
use hygraph::ts::ops;

fn main() -> Result<()> {
    // a small temporal property graph with numeric edge properties
    let mut g = TemporalGraph::new();
    let a = g.add_vertex(["Account"], props! {"name" => "acct-a"});
    let b = g.add_vertex(["Account"], props! {"name" => "acct-b"});
    let c = g.add_vertex(["Broker"], props! {"name" => "brk-c"});
    for (i, (src, dst, amt)) in [(a, b, 120.0), (a, c, 340.0), (b, c, 75.0), (a, b, 410.0)]
        .into_iter()
        .enumerate()
    {
        g.add_edge_valid(
            src,
            dst,
            ["TRANSFER"],
            props! {"amount" => amt},
            Interval::from(Timestamp::from_millis(i as i64 * 1_000)),
        )?;
    }

    // (1)/(2) operations on labeled (property) graphs: subgraph matching
    let mut p = Pattern::new();
    let x = p.vertex("x", ["Account"]);
    let y = p.vertex("y", ["Account"]);
    let e = p.edge(Some("t"), x, y, ["TRANSFER"], Direction::Out);
    p.edge_pred(
        e,
        PropPredicate::new("amount", hygraph::graph::pattern::CmpOp::Gt, 100.0),
    );
    println!(
        "(1,2) LPG pattern matching: {} high transfers between accounts",
        p.find_all(&g).len()
    );

    // (3) operations on temporal property graphs: snapshot retrieval
    let snap = snapshot::snapshot(&g, Timestamp::from_millis(1_500));
    println!(
        "(3) TPG snapshot at t1500: {} of {} edges alive",
        snap.edge_count(),
        g.edge_count()
    );

    // (4)/(5) operations on (data) series: sampling / classification features
    let series = hygraph::datagen::random::seasonal(500, 50, 10.0, 0.02, 0.5, 7);
    let sampled = ops::downsample::lttb(&series, 100);
    let feats = ops::features::feature_vector(&series);
    println!(
        "(4) series downsampled {} -> {} points",
        series.len(),
        sampled.len()
    );
    println!(
        "(5) series features: trend {:.3}, acf1 {:.2}",
        feats[5], feats[6]
    );

    // (6) time series -> graph: similarity graph over series
    let inputs: Vec<(String, TimeSeries)> = (0..4)
        .map(|i| {
            let phase = if i < 2 { 0.0 } else { 25.0 };
            (
                format!("sensor-{i}"),
                TimeSeries::generate(Timestamp::ZERO, Duration::from_mins(5), 200, move |k| {
                    (((k as f64) + phase) / 50.0 * std::f64::consts::TAU).sin()
                }),
            )
        })
        .collect();
    let (ts_graph, _) = import::series_to_hygraph(
        &inputs,
        "Sensor",
        Some(import::SimilarityConfig {
            step: Duration::from_mins(5),
            threshold: 0.9,
            window: 24,
        }),
    )?;
    println!(
        "(6) series-to-graph: {} sensors, {} similarity ts-edges",
        ts_graph.vertex_count(),
        ts_graph.edge_count()
    );

    // (7) LPG -> data series: pattern query emitting property values as a series
    let hg = import::graph_to_hygraph(&g);
    let mut p7 = Pattern::new();
    let x = p7.vertex("x", ["Account"]);
    let any = p7.vertex("y", Vec::<&str>::new());
    p7.edge(Some("t"), x, any, ["TRANSFER"], Direction::Out);
    let amounts = export::pattern_value_series(&hg, &p7, "t", "amount");
    println!(
        "(7) LPG-to-series: transfer amounts as a time series: {:?}",
        amounts.values()
    );

    // (8) LPG augmented with time series as properties
    let mut hg8 = import::graph_to_hygraph(&g);
    let sid = hg8.add_univariate_series("balance", &series);
    hg8.set_property(ElementRef::Vertex(a), "balance", sid)?;
    println!(
        "(8) series-as-property: acct-a balance series attached ({} points)",
        hg8.series(sid)?.len()
    );

    // (9) operations using both: correlation between property series +
    //     reachability
    let reach = hygraph::graph::traverse::bfs(&g, a, hygraph::graph::traverse::Follow::Out);
    println!(
        "(9) hybrid: {} vertices reachable from acct-a; series ops run on their attached series",
        reach.len()
    );

    // (10) the HyGraph layer: unified instance with views
    let view = HyGraphView::new(&hg8).with_label("Account");
    println!(
        "(10) HyGraph unified view: {} Account vertices visible through a logical view",
        view.vertex_count()
    );

    // bonus: graph metrics feed series analytics (the duality)
    let summary = algorithms::metrics::summarize(&g);
    println!("\ngraph fingerprint: {summary:?}");
    Ok(())
}
