//! The `metricEvolution` operator (paper §5): graph metrics over time
//! become time series stored back on the vertices, and series analytics
//! then run on *graph* behaviour.
//!
//! Run with: `cargo run --example metric_evolution`

use hygraph::analytics::metric_evolution::{annotate_metric_evolution, metric_evolution, Metric};
use hygraph::graph::snapshot;
use hygraph::prelude::*;
use hygraph::ts::ops;

fn main() -> Result<()> {
    // A collaboration network that grows and then fragments:
    // edges appear in waves and some close mid-way.
    let mut hg = HyGraph::new();
    let n = 12;
    let vs: Vec<VertexId> = (0..n)
        .map(|i| hg.add_pg_vertex(["Member"], props! {"name" => format!("m{i}")}))
        .collect();
    // wave 1: ring forms between t=0..60
    for i in 0..n {
        hg.add_pg_edge_valid(
            vs[i],
            vs[(i + 1) % n],
            ["COLLAB"],
            props! {},
            Interval::from(Timestamp::from_millis(i as i64 * 5)),
        )?;
    }
    // wave 2: hub spokes at t=100, all closing at t=200 (project ends)
    for i in 1..n {
        hg.add_pg_edge_valid(
            vs[0],
            vs[i],
            ["COLLAB"],
            props! {},
            Interval::new(Timestamp::from_millis(100), Timestamp::from_millis(200)),
        )?;
    }

    // sample instants: every structural change point
    let window = Interval::new(Timestamp::ZERO, Timestamp::from_millis(300));
    let instants = snapshot::change_points(hg.topology(), &window);
    println!("structural change points: {}", instants.len());

    // evolve degree and PageRank
    let degree_series = metric_evolution(&hg, Metric::Degree, &instants);
    let hub = vs[0];
    let hub_degree = &degree_series[&hub];
    println!("\nhub degree evolution:");
    for (t, d) in hub_degree.iter() {
        println!("  {t}: degree {d}");
    }

    // the evolved series is itself a time series: segment it to find the
    // structural regimes of the *graph*
    let segments = ops::segment::pelt(hub_degree, None);
    println!("\nhub degree regimes (PELT changepoints on a graph metric):");
    for seg in &segments {
        println!("  {} mean degree {:.1}", seg.interval, seg.mean);
    }

    // and detect the anomaly: the collapse at t=200
    let diffs = hub_degree.diff();
    if let Some((t, drop)) = diffs.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
        println!("\nsharpest structural change: {drop:+.0} edges at {t}");
    }

    // write the evolution back into the instance as series properties
    let annotated = annotate_metric_evolution(&mut hg, Metric::PageRank, &instants)?;
    println!("\nannotated {annotated} vertices with evolution:pagerank series");
    let sid = hg
        .props(ElementRef::Vertex(hub))?
        .series_value(Metric::PageRank.property_key())
        .expect("annotation written");
    let pr = hg.series(sid)?;
    let col = pr.column(0).unwrap();
    println!(
        "hub PageRank range over time: {:.3} .. {:.3}",
        col.iter().copied().fold(f64::INFINITY, f64::min),
        col.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    );
    hg.validate()?;
    println!("instance still valid after annotation ✓");
    Ok(())
}
