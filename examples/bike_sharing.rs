//! Urban-micromobility scenario (paper §2): a bike-sharing network as a
//! HyGraph, analysed with the four roadmap hybrid operators.
//!
//! Run with: `cargo run --release --example bike_sharing`

use hygraph::datagen::bike::{self, BikeConfig};
use hygraph::prelude::*;
use hygraph::query;
use hygraph::query_engine::hybrid;

fn main() -> Result<()> {
    let data = bike::generate(BikeConfig {
        stations: 40,
        days: 14,
        tick: Duration::from_mins(15),
        avg_degree: 5,
        seed: 2024,
    });
    let hg = data.to_hygraph();
    println!(
        "bike network: {} stations, {} trip relations, {} series ({} points each)",
        hg.vertex_count(),
        hg.edge_count(),
        hg.series_count(),
        data.points_per_station()
    );

    // ---- HyQL over series-valued properties ------------------------------
    let day = 86_400_000i64;
    let r = query(
        &hg,
        &format!(
            "MATCH (s:Station) \
             RETURN s.name AS station, MEAN(s.availability IN [0, {day})) AS day1_avg \
             ORDER BY day1_avg DESC LIMIT 5"
        ),
    )?;
    println!("\ntop-5 stations by day-1 mean availability (HyQL):");
    print!("{}", r.render());

    // ---- Q2: hybrid aggregation -----------------------------------------
    let agg = hybrid::hybrid_aggregate(&hg, Duration::from_hours(6));
    let station_series = &agg.group_series["Station"];
    println!(
        "Q2 hybrid aggregate: 'Station' group series downsampled to 6h buckets: {} points",
        station_series.len()
    );

    // ---- Q3: correlation-constrained reachability --------------------------
    let start = data.stations[0];
    let reach = hybrid::correlation_reachability(&hg, start, Duration::from_mins(15), 0.6);
    println!(
        "Q3 correlation reachability from {}: {} stations follow a correlated \
         availability regime",
        start,
        reach.len()
    );

    // ---- Q4: segmentation-driven snapshots --------------------------------
    // segment the busiest station's availability; snapshot the network at
    // each regime boundary
    let driver = &data.availability[0];
    let weekly = hygraph::ts::ops::downsample::bucket_mean(driver, Duration::from_hours(12));
    let snaps = hybrid::segmentation_snapshots(&hg, &weekly, None)?;
    println!(
        "Q4 segmentation snapshots: {} regimes detected",
        snaps.len()
    );
    for (t, snap) in snaps.iter().take(4) {
        println!(
            "  regime starting {}: {} stations active",
            t,
            snap.vertex_count()
        );
    }

    // ---- seasonality & anomaly analytics on a station ----------------------
    let s = &data.availability[3];
    let ticks_per_day =
        (Duration::from_days(1).millis() / Duration::from_mins(15).millis()) as usize;
    let strength = hygraph::ts::ops::features::seasonality_strength(s, ticks_per_day);
    println!("\nstation-3 daily seasonality strength: {strength:.2}");
    let motifs = hygraph::ts::ops::motif::motifs(s, ticks_per_day / 4, 1);
    if let Some(m) = motifs.first() {
        println!(
            "recurring 6h motif at {} and {} (distance {:.2})",
            m.time_a, m.time_b, m.distance
        );
    }
    Ok(())
}
