//! The paper's urban-micromobility use case (§2): "smart bike and
//! scooter providers must predict demand at stations and districts to
//! optimize distribution" — station-level availability forecasting over
//! the HyGraph instance, with graph context explaining where prediction
//! is hard.
//!
//! Run with: `cargo run --release --example demand_prediction`

use hygraph::datagen::bike::{self, BikeConfig};
use hygraph::prelude::*;
use hygraph::ts::ops::{forecast, stats};

fn main() -> Result<()> {
    // two weeks of history at 30-minute resolution
    let data = bike::generate(BikeConfig {
        stations: 30,
        days: 14,
        tick: Duration::from_mins(30),
        avg_degree: 5,
        seed: 7,
    });
    let ticks_per_day = 48usize;
    let train_days = 12;
    let split = Timestamp::ZERO + Duration::from_days(train_days);
    println!(
        "forecasting bike availability: {} stations, {} days history, last {} days held out",
        data.stations.len(),
        14,
        14 - train_days
    );

    // per-station: train on 12 days, forecast 2, compare against actuals
    let horizon = 2 * ticks_per_day;
    let hw_cfg = forecast::HoltWinters {
        season: ticks_per_day,
        ..Default::default()
    };
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new(); // (station, naive, hw, mean level)
    for (i, series) in data.availability.iter().enumerate() {
        let train = series.slice(&Interval::new(Timestamp::ZERO, split));
        let actual = series.slice(&Interval::new(split, data.end));
        let naive = forecast::seasonal_naive(&train, ticks_per_day, horizon)?;
        let hw = forecast::holt_winters(&train, hw_cfg, horizon)?;
        let naive_mae = forecast::mae(&naive, &actual).expect("aligned axes");
        let hw_mae = forecast::mae(&hw, &actual).expect("aligned axes");
        let level = stats::mean(series.values()).unwrap_or(0.0);
        rows.push((i, naive_mae, hw_mae, level));
    }

    let mean_naive = rows.iter().map(|r| r.1).sum::<f64>() / rows.len() as f64;
    let mean_hw = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    println!("\nfleet-wide 2-day forecast MAE (bikes):");
    println!("  seasonal naive : {mean_naive:.2}");
    println!("  holt-winters   : {mean_hw:.2}");

    // graph context: which stations are hardest to predict?
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("\nhardest stations (HW MAE) with graph context:");
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>10}",
        "station", "MAE", "capacity", "out-degree", "commuter?"
    );
    for &(i, _, hw_mae, _) in rows.iter().take(5) {
        let v = data.stations[i];
        let vd = data.graph.vertex(v)?;
        let cap = vd
            .props
            .static_value("capacity")
            .and_then(Value::as_i64)
            .unwrap_or(0);
        println!(
            "{:<12} {:>8.2} {:>10} {:>12} {:>10}",
            format!("station-{i}"),
            hw_mae,
            cap,
            data.graph.out_degree(v),
            i % 3 == 0, // the generator gives every third station rush-hour dips
        );
    }
    let commuter_mae: Vec<f64> = rows.iter().filter(|r| r.0 % 3 == 0).map(|r| r.2).collect();
    let steady_mae: Vec<f64> = rows.iter().filter(|r| r.0 % 3 != 0).map(|r| r.2).collect();
    println!(
        "\ncommuter stations (rush-hour dips) mean MAE: {:.2}; steady stations: {:.2}",
        stats::mean(&commuter_mae).unwrap_or(0.0),
        stats::mean(&steady_mae).unwrap_or(0.0)
    );

    // hybrid angle: stations in the same correlated regime share their
    // demand pattern — pooled context for cold-start stations
    let hg = data.to_hygraph();
    let anchor = data.stations[rows[0].0];
    let regime = hygraph::query_engine::hybrid::correlation_reachability(
        &hg,
        anchor,
        Duration::from_mins(30),
        0.7,
    );
    println!(
        "\ncorrelated-regime of the hardest station: {} stations share its availability pattern",
        regime.len()
    );
    println!("→ a cold-start station in this regime can borrow the group's seasonal profile.");
    Ok(())
}
